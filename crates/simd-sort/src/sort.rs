//! Top-level merge-sort assembly: padding, the three phases, runtime
//! dispatch between the AVX2 and portable kernels.

use crate::kernel::{merge_pass, phase1_block_sort, Kernel};
use crate::key::Key;
use crate::merge_tree::multiway_pass_simd;
use crate::multiway::{multiway_pass_ovc_scratch_cancellable, multiway_pass_scratch_cancellable};
use crate::ovc;
use crate::phase;
use crate::scalar;
use crate::scratch::SortScratch;
use mcs_cancel::CancelToken;

/// Default for [`SortConfig::parallel_cutoff_rows`]: inputs under 4096
/// rows sort serially regardless of the requested thread count.
pub const DEFAULT_PARALLEL_CUTOFF_ROWS: usize = 4096;

/// Tuning knobs of the merge-sort, mirroring the constants of the paper's
/// cost model (§4).
#[derive(Debug, Clone)]
pub struct SortConfig {
    /// Bytes a run may occupy before merging goes out-of-cache
    /// (the paper's `0.5 · M_L2`; per-element footprint counts key +
    /// payload bytes). Default: 1 MiB (half the development machine's
    /// 2 MiB L2; keep this equal to `0.5 · M_L2` of the cost model's
    /// `MachineSpec` so estimated and actual merge passes agree).
    pub in_cache_bytes: usize,
    /// Fan-out `F` of the out-of-cache merge tree. Default: 8.
    pub fanout: usize,
    /// Inputs up to this length use the scalar small-sort instead of the
    /// full SIMD pipeline. Default: 192.
    pub small_threshold: usize,
    /// Force the portable kernel even when AVX2 is available (used by
    /// tests and the SIMD-vs-portable benches).
    pub force_portable: bool,
    /// Use the scalar loser tree (default) or the buffered SIMD merge
    /// tree for the out-of-cache phase. Measured on this machine the
    /// loser tree wins: the tree's per-step carry state (an
    /// `Option<(__m256i, payload)>`) spills YMM registers around every
    /// vector step, costing more than the branchy scalar replay it
    /// replaces. Kept as an ablation (`ablation_multiway_impl` bench).
    pub scalar_multiway: bool,
    /// Carry offset-value codes through the out-of-cache loser-tree
    /// passes ([`crate::ovc`]), collapsing most full-key comparisons to
    /// a single integer compare. Only consulted on the scalar multiway
    /// path (the SIMD merge-tree ablation ignores it). Default: on.
    pub use_ovc: bool,
    /// Inputs shorter than this run serially even when the caller asks for
    /// multiple threads ([`crate::sort_pairs_parallel`] and the morsel-driven
    /// group sort): below it, thread spawn + merge overhead exceeds the
    /// sort itself. Default: [`DEFAULT_PARALLEL_CUTOFF_ROWS`] (4096 rows —
    /// roughly where one worker's share stops fitting the in-register
    /// phase's sweet spot and spawn cost amortizes).
    pub parallel_cutoff_rows: usize,
    /// Cooperative cancellation token, polled at every phase boundary and
    /// every [`mcs_cancel::CHECK_INTERVAL`] merge pops. The sort entry
    /// points stay infallible: a fired token makes them return early
    /// *leaving garbage in `keys`/`oids`* — fallible callers re-check the
    /// token after the call and surface a typed error. The default
    /// ([`CancelToken::none`]) never fires and costs one branch per poll.
    pub cancel: CancelToken,
}

impl Default for SortConfig {
    fn default() -> Self {
        SortConfig {
            in_cache_bytes: 1024 * 1024,
            fanout: 8,
            small_threshold: 192,
            force_portable: false,
            scalar_multiway: true,
            use_ovc: true,
            parallel_cutoff_rows: DEFAULT_PARALLEL_CUTOFF_ROWS,
            cancel: CancelToken::none(),
        }
    }
}

impl SortConfig {
    /// Run length (in elements) at which merging leaves the cache-resident
    /// phase, as a multiple of `L`.
    fn in_cache_run<K: Key>(&self, l: usize) -> usize {
        let per_elem = core::mem::size_of::<K>() + core::mem::size_of::<u32>();
        let run = self.in_cache_bytes / per_elem;
        (run / l).max(1) * l
    }
}

/// Whether AVX2 is available (memoized).
#[cfg(target_arch = "x86_64")]
pub fn avx2_available() -> bool {
    use std::sync::OnceLock;
    static AVAIL: OnceLock<bool> = OnceLock::new();
    *AVAIL.get_or_init(|| std::is_x86_feature_detected!("avx2"))
}

#[cfg(not(target_arch = "x86_64"))]
pub fn avx2_available() -> bool {
    false
}

/// The generic three-phase merge-sort over any [`Kernel`], working out
/// of a caller-provided buffer set.
///
/// `ka`/`oa` are loaded from `keys`/`oids` and padded; `kb`/`ob` are
/// resized (not cleared — every pass fully overwrites its destination);
/// `runs_buf` and `merge` feed the out-of-cache passes. All buffers grow
/// monotonically, so a warm caller allocates nothing.
///
/// # Safety
/// Caller must guarantee the kernel's instructions are supported by the
/// current CPU (trivially true for portable kernels).
#[inline(always)]
// With `phase-timing` off, `phase::Mark` is `()` and the phase marks
// become unit values — fine, they compile away entirely.
#[allow(clippy::let_unit_value, clippy::unit_arg)]
#[allow(clippy::too_many_arguments)]
unsafe fn mergesort_generic<Kn: Kernel>(
    keys: &mut [Kn::K],
    oids: &mut [u32],
    cfg: &SortConfig,
    ka: &mut Vec<Kn::K>,
    kb: &mut Vec<Kn::K>,
    oa: &mut Vec<u32>,
    ob: &mut Vec<u32>,
    ca: &mut Vec<u32>,
    cb: &mut Vec<u32>,
    runs_buf: &mut Vec<core::ops::Range<usize>>,
    merge: &mut crate::scratch::MergeScratch,
) {
    let n = keys.len();
    let l = Kn::L;
    let block = l * l;

    // Pad to a whole number of in-register blocks with MAX_KEY sentinels.
    // The kernel passes infer sizes from slice lengths, so every buffer
    // is resized to exactly `padded` (shrinking keeps capacity).
    let padded = n.div_ceil(block) * block;
    ka.clear();
    ka.reserve(padded);
    ka.extend_from_slice(keys);
    ka.resize(padded, Kn::K::MAX_KEY);
    oa.clear();
    oa.reserve(padded);
    oa.extend_from_slice(oids);
    oa.resize(padded, u32::MAX);
    kb.resize(padded, Kn::K::default());
    ob.resize(padded, 0u32);

    // Phase (a): in-register sorting -> runs of L.
    let t0 = phase::mark();
    phase1_block_sort::<Kn>(ka, oa);
    let t1 = phase::mark();

    // Phase (b): binary SIMD bitonic merging while runs fit in cache.
    let in_cache_run = cfg.in_cache_run::<Kn::K>(l);
    let mut run = l;
    let mut src_is_a = true;
    while run < padded && run < in_cache_run {
        // Cancellation: each binary pass is one cache-resident stream over
        // the buffer, so a per-pass poll bounds latency to one pass.
        if cfg.cancel.check().is_err() {
            return;
        }
        if src_is_a {
            merge_pass::<Kn>(ka, oa, kb, ob, run);
        } else {
            merge_pass::<Kn>(kb, ob, ka, oa, run);
        }
        src_is_a = !src_is_a;
        run *= 2;
    }

    // Phase (c): F-way out-of-cache merge passes (SIMD merge tree with
    // cache-resident node buffers, or the scalar loser tree for ablation,
    // with or without offset-value codes riding along).
    let t2 = phase::mark();
    let buf_elems = 4096;
    let with_ovc = cfg.scalar_multiway && cfg.use_ovc;
    if with_ovc && run < padded {
        // Derive the initial codes in one linear pass over the phase-(b)
        // output; later passes produce their output codes as they merge.
        ca.resize(padded, 0);
        cb.resize(padded, 0);
        if src_is_a {
            ovc::derive_codes(ka, run, ca);
        } else {
            ovc::derive_codes(kb, run, cb);
        }
    }
    let cancel = &cfg.cancel;
    while run < padded {
        run = if with_ovc {
            if src_is_a {
                multiway_pass_ovc_scratch_cancellable(
                    ka, oa, ca, kb, ob, cb, run, cfg.fanout, runs_buf, merge, cancel,
                )
            } else {
                multiway_pass_ovc_scratch_cancellable(
                    kb, ob, cb, ka, oa, ca, run, cfg.fanout, runs_buf, merge, cancel,
                )
            }
        } else if cfg.scalar_multiway {
            if src_is_a {
                multiway_pass_scratch_cancellable(
                    ka, oa, kb, ob, run, cfg.fanout, runs_buf, merge, cancel,
                )
            } else {
                multiway_pass_scratch_cancellable(
                    kb, ob, ka, oa, run, cfg.fanout, runs_buf, merge, cancel,
                )
            }
        } else if src_is_a {
            multiway_pass_simd::<Kn>(ka, oa, kb, ob, run, cfg.fanout, buf_elems)
        } else {
            multiway_pass_simd::<Kn>(kb, ob, ka, oa, run, cfg.fanout, buf_elems)
        };
        src_is_a = !src_is_a;
        // A fired token may have truncated the pass above, leaving the
        // destination buffer partially written; bail before touching it.
        if cancel.check().is_err() {
            return;
        }
    }
    phase::record_marks(t0, t1, t2, phase::mark());

    // Final poll before the compaction asserts and the copy-back: a pass
    // cut short by cancellation must never publish garbage into
    // `keys`/`oids` (or trip `compact_padding`'s invariants on it).
    if cfg.cancel.check().is_err() {
        return;
    }
    let (fk, fo) = if src_is_a { (ka, oa) } else { (kb, ob) };
    compact_padding(fk, fo, n);
    keys.copy_from_slice(&fk[..n]);
    oids.copy_from_slice(&fo[..n]);
}

/// Move padding sentinels to the very end of the sorted buffer.
///
/// Real keys equal to `K::MAX_KEY` tie with padding entries, so after the
/// sort the maximal-key region may interleave both. Within that region
/// (identical keys, so any order is valid) real entries are compacted to
/// the front. Requires that real oids are `< u32::MAX`.
fn compact_padding<K: Key>(keys: &mut [K], oids: &mut [u32], n: usize) {
    let padded = keys.len();
    if padded == n {
        return;
    }
    let start = keys.partition_point(|&k| k < K::MAX_KEY);
    debug_assert!(padded - start >= padded - n);
    let mut write = start;
    for read in start..padded {
        if oids[read] != u32::MAX {
            oids.swap(write, read);
            write += 1;
        }
    }
    debug_assert_eq!(write, n);
    // Keys in [start..padded) are all MAX_KEY already; only oids moved.
}

macro_rules! dispatch_sort {
    ($fn_name:ident, $scratch_name:ident, $avx_name:ident, $k:ty, $field:ident, $portable:ty, $avx:ty) => {
        /// Sort `(keys, oids)` ascending by key with the configured
        /// merge-sort. oid values must be `< u32::MAX`.
        pub fn $fn_name(keys: &mut [$k], oids: &mut [u32], cfg: &SortConfig) {
            let mut scratch = SortScratch::new();
            $scratch_name(keys, oids, cfg, &mut scratch)
        }

        /// Like the plain variant, but drawing all working memory from
        /// `scratch` (allocation-free once the scratch is warm).
        pub fn $scratch_name(
            keys: &mut [$k],
            oids: &mut [u32],
            cfg: &SortConfig,
            scratch: &mut SortScratch,
        ) {
            assert_eq!(keys.len(), oids.len(), "keys/oids length mismatch");
            if keys.len() <= cfg.small_threshold {
                scalar::insertion_sort_pairs(keys, oids);
                return;
            }
            debug_assert!(oids.iter().all(|&o| o != u32::MAX));
            let (ka, kb) = (&mut scratch.$field.0, &mut scratch.$field.1);
            let (oa, ob) = (&mut scratch.oids.0, &mut scratch.oids.1);
            let (ca, cb) = (&mut scratch.codes.0, &mut scratch.codes.1);
            let (runs, merge) = (&mut scratch.runs, &mut scratch.merge);
            #[cfg(target_arch = "x86_64")]
            if !cfg.force_portable && avx2_available() {
                // SAFETY: AVX2 presence checked above.
                unsafe { $avx_name(keys, oids, cfg, ka, kb, oa, ob, ca, cb, runs, merge) };
                return;
            }
            // SAFETY: portable kernel has no ISA requirements.
            unsafe {
                mergesort_generic::<$portable>(keys, oids, cfg, ka, kb, oa, ob, ca, cb, runs, merge)
            }
        }

        #[cfg(target_arch = "x86_64")]
        #[target_feature(enable = "avx2")]
        #[allow(clippy::too_many_arguments)]
        unsafe fn $avx_name(
            keys: &mut [$k],
            oids: &mut [u32],
            cfg: &SortConfig,
            ka: &mut Vec<$k>,
            kb: &mut Vec<$k>,
            oa: &mut Vec<u32>,
            ob: &mut Vec<u32>,
            ca: &mut Vec<u32>,
            cb: &mut Vec<u32>,
            runs: &mut Vec<core::ops::Range<usize>>,
            merge: &mut crate::scratch::MergeScratch,
        ) {
            mergesort_generic::<$avx>(keys, oids, cfg, ka, kb, oa, ob, ca, cb, runs, merge)
        }
    };
}

dispatch_sort!(
    sort_u16_with,
    sort_u16_with_scratch,
    sort_u16_avx2,
    u16,
    k16,
    crate::portable::P16,
    crate::avx2::A16
);
dispatch_sort!(
    sort_u32_with,
    sort_u32_with_scratch,
    sort_u32_avx2,
    u32,
    k32,
    crate::portable::P32,
    crate::avx2::A32
);
dispatch_sort!(
    sort_u64_with,
    sort_u64_with_scratch,
    sort_u64_avx2,
    u64,
    k64,
    crate::portable::P64,
    crate::avx2::A64
);

/// Key types that have a full SIMD sort pipeline.
pub trait SortableKey: Key {
    /// Sort `(keys, oids)` ascending by key.
    fn sort_pairs_with(keys: &mut [Self], oids: &mut [u32], cfg: &SortConfig);

    /// Sort `(keys, oids)` ascending by key, drawing all working memory
    /// from `scratch` ([`SortScratch`]); allocation-free once warm.
    fn sort_pairs_with_scratch(
        keys: &mut [Self],
        oids: &mut [u32],
        cfg: &SortConfig,
        scratch: &mut SortScratch,
    );
}

macro_rules! impl_sortable {
    ($k:ty, $fn_name:ident, $scratch_name:ident) => {
        impl SortableKey for $k {
            #[inline]
            fn sort_pairs_with(keys: &mut [Self], oids: &mut [u32], cfg: &SortConfig) {
                $fn_name(keys, oids, cfg)
            }
            #[inline]
            fn sort_pairs_with_scratch(
                keys: &mut [Self],
                oids: &mut [u32],
                cfg: &SortConfig,
                scratch: &mut SortScratch,
            ) {
                $scratch_name(keys, oids, cfg, scratch)
            }
        }
    };
}

impl_sortable!(u16, sort_u16_with, sort_u16_with_scratch);
impl_sortable!(u32, sort_u32_with, sort_u32_with_scratch);
impl_sortable!(u64, sort_u64_with, sort_u64_with_scratch);

#[cfg(test)]
mod tests {
    use super::*;

    fn xorshift(state: &mut u64) -> u64 {
        *state ^= *state << 13;
        *state ^= *state >> 7;
        *state ^= *state << 17;
        *state
    }

    fn check_sorted_permutation<K: SortableKey>(orig_keys: &[K], keys: &[K], oids: &[u32]) {
        assert!(keys.windows(2).all(|w| w[0] <= w[1]), "keys not sorted");
        // Every output position points back at its original key.
        for (i, &o) in oids.iter().enumerate() {
            assert_eq!(
                keys[i], orig_keys[o as usize],
                "oid {o} at position {i} mismatches"
            );
        }
        // oids form a permutation.
        let mut seen = vec![false; oids.len()];
        for &o in oids {
            assert!(!seen[o as usize], "duplicate oid {o}");
            seen[o as usize] = true;
        }
    }

    fn roundtrip<K: SortableKey>(n: usize, mask: u64, cfg: &SortConfig, seed: u64) {
        let mut state = seed;
        let orig: Vec<K> = (0..n)
            .map(|_| K::from_u64(xorshift(&mut state) & mask))
            .collect();
        let mut keys = orig.clone();
        let mut oids: Vec<u32> = (0..n as u32).collect();
        K::sort_pairs_with(&mut keys, &mut oids, cfg);
        check_sorted_permutation(&orig, &keys, &oids);
    }

    #[test]
    fn sort_u32_sizes() {
        let cfg = SortConfig::default();
        for n in [
            0usize, 1, 2, 63, 64, 65, 192, 193, 256, 1000, 4096, 10_000, 100_000,
        ] {
            roundtrip::<u32>(n, u64::MAX, &cfg, 42 + n as u64);
        }
    }

    #[test]
    fn sort_u16_sizes() {
        let cfg = SortConfig::default();
        for n in [0usize, 255, 256, 257, 5000, 70_000] {
            roundtrip::<u16>(n, u64::MAX, &cfg, 7 + n as u64);
        }
    }

    #[test]
    fn sort_u64_sizes() {
        let cfg = SortConfig::default();
        for n in [0usize, 15, 16, 17, 1000, 50_000] {
            roundtrip::<u64>(n, u64::MAX, &cfg, 99 + n as u64);
        }
    }

    #[test]
    fn sort_with_heavy_ties() {
        let cfg = SortConfig::default();
        roundtrip::<u32>(20_000, 0x7, &cfg, 1);
        roundtrip::<u16>(20_000, 0x3, &cfg, 2);
        roundtrip::<u64>(20_000, 0x1, &cfg, 3);
    }

    #[test]
    fn sort_with_max_keys_present() {
        // Many real MAX keys exercise the padding-compaction path.
        let cfg = SortConfig::default();
        let n = 5000;
        let orig: Vec<u16> = (0..n)
            .map(|i| if i % 3 == 0 { u16::MAX } else { i as u16 })
            .collect();
        let mut keys = orig.clone();
        let mut oids: Vec<u32> = (0..n as u32).collect();
        u16::sort_pairs_with(&mut keys, &mut oids, &cfg);
        check_sorted_permutation(&orig, &keys, &oids);
    }

    #[test]
    fn portable_matches_avx2() {
        let mut cfg = SortConfig::default();
        let n = 30_000;
        let mut state = 0xDEADBEEFu64;
        let orig: Vec<u32> = (0..n).map(|_| xorshift(&mut state) as u32).collect();

        let mut k1 = orig.clone();
        let mut o1: Vec<u32> = (0..n as u32).collect();
        cfg.force_portable = true;
        sort_u32_with(&mut k1, &mut o1, &cfg);

        let mut k2 = orig.clone();
        let mut o2: Vec<u32> = (0..n as u32).collect();
        cfg.force_portable = false;
        sort_u32_with(&mut k2, &mut o2, &cfg);

        assert_eq!(k1, k2);
        check_sorted_permutation(&orig, &k2, &o2);
    }

    #[test]
    fn small_fanout_and_tiny_cache_exercise_multiway() {
        let cfg = SortConfig {
            in_cache_bytes: 1024, // force out-of-cache merging early
            fanout: 3,
            small_threshold: 16,
            ..SortConfig::default()
        };
        roundtrip::<u32>(50_000, u64::MAX, &cfg, 5);
        roundtrip::<u16>(50_000, u64::MAX, &cfg, 6);
        roundtrip::<u64>(50_000, u64::MAX, &cfg, 8);
    }

    #[test]
    fn scratch_reuse_matches_fresh_across_banks_and_sizes() {
        // One scratch carried across banks and shrinking/growing inputs
        // must produce outputs identical to the allocate-per-call path.
        let cfg = SortConfig::default();
        let mut scratch = SortScratch::new();
        let mut state = 0xABCDu64;
        for &n in &[10_000usize, 500, 25_000, 0, 7] {
            macro_rules! check_bank {
                ($k:ty) => {{
                    let orig: Vec<$k> = (0..n)
                        .map(|_| <$k as Key>::from_u64(xorshift(&mut state)))
                        .collect();
                    let mut k1 = orig.clone();
                    let mut o1: Vec<u32> = (0..n as u32).collect();
                    <$k>::sort_pairs_with(&mut k1, &mut o1, &cfg);
                    let mut k2 = orig.clone();
                    let mut o2: Vec<u32> = (0..n as u32).collect();
                    <$k>::sort_pairs_with_scratch(&mut k2, &mut o2, &cfg, &mut scratch);
                    assert_eq!(k1, k2);
                    assert_eq!(o1, o2);
                }};
            }
            check_bank!(u16);
            check_bank!(u32);
            check_bank!(u64);
        }
        assert!(scratch.bytes() > 0, "scratch grew to its high-water mark");
    }

    #[test]
    fn parallel_cutoff_default_is_pinned() {
        assert_eq!(DEFAULT_PARALLEL_CUTOFF_ROWS, 4096);
        assert_eq!(
            SortConfig::default().parallel_cutoff_rows,
            DEFAULT_PARALLEL_CUTOFF_ROWS
        );
    }

    #[test]
    fn already_sorted_and_reversed() {
        let cfg = SortConfig::default();
        let n = 10_000usize;
        let orig: Vec<u32> = (0..n as u32).collect();
        let mut keys = orig.clone();
        let mut oids: Vec<u32> = (0..n as u32).collect();
        sort_u32_with(&mut keys, &mut oids, &cfg);
        check_sorted_permutation(&orig, &keys, &oids);

        let orig: Vec<u32> = (0..n as u32).rev().collect();
        let mut keys = orig.clone();
        let mut oids: Vec<u32> = (0..n as u32).collect();
        sort_u32_with(&mut keys, &mut oids, &cfg);
        check_sorted_permutation(&orig, &keys, &oids);
    }
}
