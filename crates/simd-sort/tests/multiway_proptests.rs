//! Property tests for the out-of-cache loser-tree merge
//! ([`mcs_simd_sort::multiway`]) and the LSD radix fallback
//! ([`mcs_simd_sort::radix`]).
//!
//! The merge is driven across run counts {1, 2, 7, 16} — one run (the
//! copy fast path), a power of two, a count that forces leaf padding,
//! and a full fanout — on duplicate-heavy and pre-sorted inputs. Each
//! case checks the merged output is a sorted permutation of the inputs,
//! i.e. the internal `pop().expect("loser tree drained early")` invariant
//! holds: the tree yields exactly `Σ|run|` items and never drains early.

use core::ops::Range;

use mcs_simd_sort::multiway::{multiway_merge, multiway_pass};
use mcs_simd_sort::{
    group_boundaries, multiway_merge_ovc_scratch, ovc_encode, sort_pairs_radix,
    sort_pairs_radix_in_groups, MergeScratch,
};
use mcs_test_support::{check, Rng};

/// Run counts exercised by every merge property.
const RUN_COUNTS: [usize; 4] = [1, 2, 7, 16];

/// Build `count` adjacent sorted runs of random lengths (some empty) and
/// return (keys, oids, run ranges). `dup_heavy` draws keys from a tiny
/// domain; `pre_sorted` makes the whole buffer globally sorted so every
/// run boundary is a no-op merge.
fn gen_runs(
    rng: &mut Rng,
    count: usize,
    dup_heavy: bool,
    pre_sorted: bool,
) -> (Vec<u32>, Vec<u32>, Vec<Range<usize>>) {
    let mut keys: Vec<u32> = Vec::new();
    let mut runs = Vec::with_capacity(count);
    for _ in 0..count {
        let len = rng.gen_range(0..200usize);
        let start = keys.len();
        let domain = if dup_heavy { 4u32 } else { 1 << 20 };
        let mut run: Vec<u32> = (0..len).map(|_| rng.gen::<u32>() % domain).collect();
        run.sort_unstable();
        keys.extend_from_slice(&run);
        runs.push(start..keys.len());
    }
    if pre_sorted {
        keys.sort_unstable();
    }
    let oids: Vec<u32> = (0..keys.len() as u32).collect();
    (keys, oids, runs)
}

/// The merged output must be globally sorted and a permutation of the
/// source: every oid appears once and still carries its source key.
fn verify_merge(src_k: &[u32], dst_k: &[u32], dst_o: &[u32]) {
    assert!(dst_k.windows(2).all(|w| w[0] <= w[1]), "output not sorted");
    let mut seen = vec![false; src_k.len()];
    for (i, &o) in dst_o.iter().enumerate() {
        assert_eq!(dst_k[i], src_k[o as usize], "oid {o} carries wrong key");
        assert!(!seen[o as usize], "oid {o} emitted twice");
        seen[o as usize] = true;
    }
    assert!(seen.iter().all(|&s| s), "some oid never emitted");
}

fn merge_property(rng: &mut Rng, dup_heavy: bool, pre_sorted: bool) {
    for &count in &RUN_COUNTS {
        let (keys, oids, runs) = gen_runs(rng, count, dup_heavy, pre_sorted);
        let n = keys.len();
        let mut dst_k = vec![0u32; n];
        let mut dst_o = vec![0u32; n];
        multiway_merge(&keys, &oids, &mut dst_k, &mut dst_o, &runs, 0);
        verify_merge(&keys, &dst_k, &dst_o);
    }
}

#[test]
fn multiway_merge_random_runs() {
    check("multiway_merge_random_runs", 48, |rng| {
        merge_property(rng, false, false);
    });
}

#[test]
fn multiway_merge_duplicate_heavy() {
    check("multiway_merge_duplicate_heavy", 48, |rng| {
        merge_property(rng, true, false);
    });
}

#[test]
fn multiway_merge_pre_sorted() {
    check("multiway_merge_pre_sorted", 48, |rng| {
        merge_property(rng, false, true);
    });
}

/// Regression for the loser tree's lower-run-index tie-break (see the
/// invariant note on `beats`): callers pass runs in buffer order, so a
/// merge that prefers the lower run index on equal keys is *stable by
/// run* — equal keys drain in run order. `gen_runs` assigns oids as
/// buffer positions, so stability means equal keys carry strictly
/// ascending oids in the output. Duplicate-heavy inputs make ties the
/// common case, and the OVC variant must tie-break identically (its
/// code-update protocol assumes the loser of an equal-key match is the
/// higher run index).
#[test]
fn merge_is_stable_by_run_order() {
    fn assert_run_stable(dst_k: &[u32], dst_o: &[u32]) {
        for i in 1..dst_k.len() {
            if dst_k[i - 1] == dst_k[i] {
                assert!(
                    dst_o[i - 1] < dst_o[i],
                    "equal keys {} drained out of run order: oid {} before {}",
                    dst_k[i],
                    dst_o[i - 1],
                    dst_o[i]
                );
            }
        }
    }
    check("merge_is_stable_by_run_order", 48, |rng| {
        for &count in &RUN_COUNTS {
            let (keys, oids, runs) = gen_runs(rng, count, true, false);
            let n = keys.len();
            let mut dst_k = vec![0u32; n];
            let mut dst_o = vec![0u32; n];
            multiway_merge(&keys, &oids, &mut dst_k, &mut dst_o, &runs, 0);
            verify_merge(&keys, &dst_k, &dst_o);
            assert_run_stable(&dst_k, &dst_o);

            // The OVC merge must make the same tie-break decisions.
            let mut codes = vec![0u32; n];
            for r in &runs {
                for i in r.clone() {
                    let base = if i == r.start { 0 } else { keys[i - 1] };
                    codes[i] = ovc_encode(keys[i] as u64, base as u64);
                }
            }
            let (mut ok, mut oo, mut oc) = (vec![0u32; n], vec![0u32; n], vec![0u32; n]);
            let mut scratch = MergeScratch::new();
            multiway_merge_ovc_scratch(
                &keys,
                &oids,
                &codes,
                &mut ok,
                &mut oo,
                &mut oc,
                &runs,
                0,
                &mut scratch,
            );
            assert_eq!(ok, dst_k, "OVC merge reordered keys");
            assert_eq!(oo, dst_o, "OVC merge broke run-order stability");
        }
    });
}

#[test]
fn multiway_merge_all_runs_empty() {
    // Degenerate: every run empty — the tree must report drained
    // immediately instead of panicking.
    for &count in &RUN_COUNTS {
        let runs: Vec<Range<usize>> = (0..count).map(|_| 0..0).collect();
        let mut dst_k: Vec<u32> = Vec::new();
        let mut dst_o: Vec<u32> = Vec::new();
        multiway_merge(&[], &[], &mut dst_k, &mut dst_o, &runs, 0);
        assert!(dst_k.is_empty());
    }
}

#[test]
fn multiway_pass_matches_full_sort() {
    // Repeated passes over fixed-length runs must converge to a fully
    // sorted buffer, whatever the fanout.
    check("multiway_pass_matches_full_sort", 32, |rng| {
        let n = rng.gen_range(1..3000usize);
        let fanout = *rng.choose(&[2usize, 3, 5, 16]);
        let mut run = rng.gen_range(1..64usize);
        let src: Vec<u64> = (0..n).map(|_| rng.gen::<u64>() % (1 << 24)).collect();
        let mut keys = src.clone();
        let mut oids: Vec<u32> = (0..n as u32).collect();
        for chunk in keys.chunks_mut(run) {
            chunk.sort_unstable();
        }
        // Re-derive per-run oids so (key, oid) stays a consistent pair.
        let mut sorted_oids = vec![0u32; n];
        {
            let mut idx: Vec<u32> = (0..n as u32).collect();
            let mut start = 0;
            while start < n {
                let end = (start + run).min(n);
                idx[start..end].sort_unstable_by_key(|&o| src[o as usize]);
                sorted_oids[start..end].copy_from_slice(&idx[start..end]);
                start = end;
            }
        }
        oids.copy_from_slice(&sorted_oids);
        let mut buf_k = vec![0u64; n];
        let mut buf_o = vec![0u32; n];
        let mut in_orig = true;
        while run < n {
            run = if in_orig {
                multiway_pass(&keys, &oids, &mut buf_k, &mut buf_o, run, fanout)
            } else {
                multiway_pass(&buf_k, &buf_o, &mut keys, &mut oids, run, fanout)
            };
            in_orig = !in_orig;
        }
        let (fk, fo) = if in_orig {
            (&keys, &oids)
        } else {
            (&buf_k, &buf_o)
        };
        verify_merge_u64(&src, fk, fo);
    });
}

fn verify_merge_u64(src_k: &[u64], dst_k: &[u64], dst_o: &[u32]) {
    assert!(dst_k.windows(2).all(|w| w[0] <= w[1]));
    let mut seen = vec![false; src_k.len()];
    for (i, &o) in dst_o.iter().enumerate() {
        assert_eq!(dst_k[i], src_k[o as usize]);
        assert!(!seen[o as usize]);
        seen[o as usize] = true;
    }
    assert!(seen.iter().all(|&s| s));
}

#[test]
fn radix_matches_oracle() {
    check("radix_matches_oracle", 48, |rng| {
        let n = rng.gen_range(0..4000usize);
        let width = rng.gen_range(1..=24u32);
        let dup_heavy = rng.gen_bool(0.5);
        let domain = if dup_heavy { 3u64 } else { 1u64 << width };
        let src: Vec<u32> = (0..n)
            .map(|_| (rng.gen::<u64>() % domain.min(1u64 << width)) as u32)
            .collect();
        let mut keys = src.clone();
        if rng.gen_bool(0.25) {
            keys.sort_unstable(); // pre-sorted input
        }
        let orig = keys.clone();
        let mut oids: Vec<u32> = (0..n as u32).collect();
        sort_pairs_radix(&mut keys, &mut oids, width);
        verify_merge(&orig, &keys, &oids);
    });
}

#[test]
fn radix_in_groups_matches_oracle() {
    check("radix_in_groups_matches_oracle", 32, |rng| {
        let n = rng.gen_range(1..3000usize);
        let width = 16u32;
        // Group keys with few distinct values yield realistic segment
        // shapes (some singleton, some large).
        let group_key: Vec<u32> = {
            let mut g: Vec<u32> = (0..n).map(|_| rng.gen::<u32>() % 8).collect();
            g.sort_unstable();
            g
        };
        let groups = group_boundaries(&group_key);
        let src: Vec<u32> = (0..n).map(|_| rng.gen::<u32>() & 0xFFFF).collect();
        let mut keys = src.clone();
        let mut oids: Vec<u32> = (0..n as u32).collect();
        let stats = sort_pairs_radix_in_groups(&mut keys, &mut oids, &groups, width);
        assert!(stats.codes_sorted <= n);
        // Each group individually sorted, oids a permutation overall.
        for r in groups.iter() {
            assert!(keys[r].windows(2).all(|w| w[0] <= w[1]));
        }
        let mut seen = vec![false; n];
        for (i, &o) in oids.iter().enumerate() {
            assert_eq!(keys[i], src[o as usize]);
            assert!(!seen[o as usize]);
            seen[o as usize] = true;
        }
    });
}
