//! Property-based tests: the SIMD sorts agree with the scalar oracle on
//! arbitrary inputs, for every bank width, both backends and the
//! segmented/parallel variants.
//!
//! Driven by the `mcs-test-support` mini-harness: `PROPTEST_CASES` caps
//! the case count, `MCS_TEST_SEED` replays a reported failure.

use mcs_simd_sort::{
    group_boundaries, sort_pairs_in_groups, sort_pairs_parallel, sort_pairs_with, GroupBounds,
    SortConfig, SortableKey,
};
use mcs_test_support::{check, Rng};

fn verify<K: SortableKey>(orig: &[K], keys: &[K], oids: &[u32]) {
    assert!(keys.windows(2).all(|w| w[0] <= w[1]));
    let mut seen = vec![false; oids.len()];
    for (i, &o) in oids.iter().enumerate() {
        assert_eq!(keys[i], orig[o as usize]);
        assert!(!seen[o as usize]);
        seen[o as usize] = true;
    }
}

fn run_sort<K: SortableKey>(orig: Vec<K>, force_portable: bool) {
    let cfg = SortConfig {
        force_portable,
        // Small bounds exercise multi-pass merging even at proptest sizes.
        in_cache_bytes: 4096,
        fanout: 3,
        small_threshold: 16,
        ..SortConfig::default()
    };
    let mut keys = orig.clone();
    let mut oids: Vec<u32> = (0..orig.len() as u32).collect();
    sort_pairs_with(&mut keys, &mut oids, &cfg);
    verify(&orig, &keys, &oids);
}

fn random_vec<K: SortableKey>(rng: &mut Rng, max_len: usize) -> Vec<K> {
    let n = rng.gen_range(0..max_len);
    (0..n).map(|_| K::from_u64(rng.gen())).collect()
}

#[test]
fn sort_u16_matches_oracle() {
    check("sort_u16_matches_oracle", 64, |rng| {
        let v: Vec<u16> = random_vec(rng, 3000);
        run_sort(v.clone(), false);
        run_sort(v, true);
    });
}

#[test]
fn sort_u32_matches_oracle() {
    check("sort_u32_matches_oracle", 64, |rng| {
        let v: Vec<u32> = random_vec(rng, 3000);
        run_sort(v.clone(), false);
        run_sort(v, true);
    });
}

#[test]
fn sort_u64_matches_oracle() {
    check("sort_u64_matches_oracle", 64, |rng| {
        let v: Vec<u64> = random_vec(rng, 3000);
        run_sort(v.clone(), false);
        run_sort(v, true);
    });
}

/// Low-cardinality keys stress tie handling and padding compaction.
#[test]
fn sort_low_cardinality() {
    check("sort_low_cardinality", 64, |rng| {
        let n = rng.gen_range(0..4000usize);
        let v: Vec<u32> = (0..n).map(|_| rng.gen_range(0..4u32)).collect();
        run_sort(v, false);
    });
}

/// Keys including MAX stress the padding sentinel logic.
#[test]
fn sort_with_max_values() {
    check("sort_with_max_values", 64, |rng| {
        let n = rng.gen_range(0..4000usize);
        let v: Vec<u16> = (0..n)
            .map(|_| {
                if rng.gen_bool(0.5) {
                    u16::MAX
                } else {
                    rng.gen()
                }
            })
            .collect();
        run_sort(v, false);
    });
}

#[test]
fn segmented_sort_is_sorted_per_group() {
    check("segmented_sort_is_sorted_per_group", 64, |rng| {
        let n = rng.gen_range(1..2000usize);
        let v: Vec<u32> = (0..n).map(|_| rng.gen()).collect();
        let cut_count = rng.gen_range(0..20usize);
        let mut offs: Vec<u32> = (0..cut_count)
            .map(|_| rng.gen_range(0..=n) as u32)
            .collect();
        offs.push(0);
        offs.push(n as u32);
        offs.sort_unstable();
        offs.dedup();
        let groups = GroupBounds::from_offsets(offs);
        let mut keys = v.clone();
        let mut oids: Vec<u32> = (0..n as u32).collect();
        sort_pairs_in_groups(&mut keys, &mut oids, &groups, &SortConfig::default());
        for r in groups.iter() {
            assert!(keys[r].windows(2).all(|w| w[0] <= w[1]));
        }
        for i in 0..n {
            assert_eq!(keys[i], v[oids[i] as usize]);
        }
    });
}

#[test]
fn parallel_matches_serial_order() {
    check("parallel_matches_serial_order", 64, |rng| {
        let v: Vec<u32> = random_vec(rng, 5000);
        let cfg = SortConfig::default();
        let mut k1 = v.clone();
        let mut o1: Vec<u32> = (0..v.len() as u32).collect();
        sort_pairs_with(&mut k1, &mut o1, &cfg);
        let mut k2 = v.clone();
        let mut o2: Vec<u32> = (0..v.len() as u32).collect();
        sort_pairs_parallel(&mut k2, &mut o2, 3, &cfg).expect("no faults armed");
        assert_eq!(k1, k2);
    });
}

#[test]
fn group_boundaries_partition_equal_runs() {
    check("group_boundaries_partition_equal_runs", 64, |rng| {
        let n = rng.gen_range(0..1000usize);
        let mut sorted: Vec<u32> = (0..n).map(|_| rng.gen_range(0..16u32)).collect();
        sorted.sort_unstable();
        let g = group_boundaries(&sorted);
        // Within groups: all equal. Across boundaries: strictly increasing.
        for r in g.iter() {
            if r.len() > 1 {
                assert!(sorted[r.clone()].windows(2).all(|w| w[0] == w[1]));
            }
            if r.end < sorted.len() && r.end > r.start {
                assert!(sorted[r.end - 1] < sorted[r.end]);
            }
        }
        assert_eq!(g.num_rows(), sorted.len());
    });
}
