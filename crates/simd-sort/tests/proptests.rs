//! Property-based tests: the SIMD sorts agree with the scalar oracle on
//! arbitrary inputs, for every bank width, both backends and the
//! segmented/parallel variants.

use mcs_simd_sort::{
    group_boundaries, sort_pairs_in_groups, sort_pairs_parallel, sort_pairs_with, GroupBounds,
    SortConfig, SortableKey,
};
use proptest::prelude::*;

fn check<K: SortableKey>(orig: &[K], keys: &[K], oids: &[u32]) {
    assert!(keys.windows(2).all(|w| w[0] <= w[1]));
    let mut seen = vec![false; oids.len()];
    for (i, &o) in oids.iter().enumerate() {
        assert_eq!(keys[i], orig[o as usize]);
        assert!(!seen[o as usize]);
        seen[o as usize] = true;
    }
}

fn run_sort<K: SortableKey>(orig: Vec<K>, force_portable: bool) {
    let cfg = SortConfig {
        force_portable,
        // Small bounds exercise multi-pass merging even at proptest sizes.
        in_cache_bytes: 4096,
        fanout: 3,
        small_threshold: 16,
        ..SortConfig::default()
    };
    let mut keys = orig.clone();
    let mut oids: Vec<u32> = (0..orig.len() as u32).collect();
    sort_pairs_with(&mut keys, &mut oids, &cfg);
    check(&orig, &keys, &oids);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn sort_u16_matches_oracle(v in prop::collection::vec(any::<u16>(), 0..3000)) {
        run_sort(v.clone(), false);
        run_sort(v, true);
    }

    #[test]
    fn sort_u32_matches_oracle(v in prop::collection::vec(any::<u32>(), 0..3000)) {
        run_sort(v.clone(), false);
        run_sort(v, true);
    }

    #[test]
    fn sort_u64_matches_oracle(v in prop::collection::vec(any::<u64>(), 0..3000)) {
        run_sort(v.clone(), false);
        run_sort(v, true);
    }

    /// Low-cardinality keys stress tie handling and padding compaction.
    #[test]
    fn sort_low_cardinality(v in prop::collection::vec(0u32..4, 0..4000)) {
        run_sort(v, false);
    }

    /// Keys including MAX stress the padding sentinel logic.
    #[test]
    fn sort_with_max_values(v in prop::collection::vec(
        prop_oneof![Just(u16::MAX), any::<u16>()], 0..4000)) {
        run_sort(v, false);
    }

    #[test]
    fn segmented_sort_is_sorted_per_group(
        v in prop::collection::vec(any::<u32>(), 1..2000),
        cuts in prop::collection::vec(any::<u16>(), 0..20),
    ) {
        let n = v.len();
        let mut offs: Vec<u32> = cuts.iter().map(|&c| (c as usize % (n + 1)) as u32).collect();
        offs.push(0);
        offs.push(n as u32);
        offs.sort_unstable();
        offs.dedup();
        let groups = GroupBounds::from_offsets(offs);
        let mut keys = v.clone();
        let mut oids: Vec<u32> = (0..n as u32).collect();
        sort_pairs_in_groups(&mut keys, &mut oids, &groups, &SortConfig::default());
        for r in groups.iter() {
            prop_assert!(keys[r].windows(2).all(|w| w[0] <= w[1]));
        }
        for i in 0..n {
            prop_assert_eq!(keys[i], v[oids[i] as usize]);
        }
    }

    #[test]
    fn parallel_matches_serial_order(v in prop::collection::vec(any::<u32>(), 0..5000)) {
        let cfg = SortConfig::default();
        let mut k1 = v.clone();
        let mut o1: Vec<u32> = (0..v.len() as u32).collect();
        sort_pairs_with(&mut k1, &mut o1, &cfg);
        let mut k2 = v.clone();
        let mut o2: Vec<u32> = (0..v.len() as u32).collect();
        sort_pairs_parallel(&mut k2, &mut o2, 3, &cfg);
        prop_assert_eq!(k1, k2);
    }

    #[test]
    fn group_boundaries_partition_equal_runs(v in prop::collection::vec(0u32..16, 0..1000)) {
        let mut sorted = v.clone();
        sorted.sort_unstable();
        let g = group_boundaries(&sorted);
        // Within groups: all equal. Across boundaries: strictly increasing.
        for r in g.iter() {
            if r.len() > 1 {
                prop_assert!(sorted[r.clone()].windows(2).all(|w| w[0] == w[1]));
            }
            if r.end < sorted.len() && r.end > r.start {
                prop_assert!(sorted[r.end - 1] < sorted[r.end]);
            }
        }
        prop_assert_eq!(g.num_rows(), sorted.len());
    }
}
