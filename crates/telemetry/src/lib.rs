//! # mcs-telemetry
//!
//! Dependency-free structured observability for the code-massage
//! workspace: lightweight **spans** (RAII-timed or pre-measured),
//! monotonic **counters**, log₂-bucketed **histograms**, and a JSON-lines
//! exporter the test suite and benchmark trajectory can consume.
//!
//! The crate talks to one process-global, thread-safe collector. Every
//! entry point exists in two builds selected by the `enabled` cargo
//! feature (on by default):
//!
//! * **enabled** — spans push records into a mutex-guarded buffer;
//!   counters and histograms aggregate in-place. The collector is only
//!   touched at phase granularity (per sort round, per query, per planner
//!   doubling), never per row, so the overhead is nanoseconds per event.
//! * **disabled** (`--no-default-features` anywhere up the dependency
//!   chain) — the same API compiles to empty inline functions and
//!   zero-sized guards; hot paths pay nothing, and callers need no `cfg`.
//!
//! ```
//! let mut g = mcs_telemetry::span("example.work");
//! g.attr("rows", 128u64);
//! drop(g); // records the span (no-op when the feature is off)
//! mcs_telemetry::counter_add("example.invocations", 1);
//! ```
//!
//! Downstream crates expose their own `telemetry` feature forwarding to
//! `mcs-telemetry/enabled`, so `cargo test --workspace
//! --no-default-features` exercises the no-op path end to end.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use std::path::{Path, PathBuf};

/// An attribute value attached to a span.
#[derive(Debug, Clone, PartialEq)]
pub enum AttrValue {
    /// Unsigned integer.
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Float.
    F64(f64),
    /// Boolean.
    Bool(bool),
    /// String (query names, plan notations).
    Str(String),
}

macro_rules! attr_from {
    ($($t:ty => $v:ident via $conv:expr),*) => {
        $(impl From<$t> for AttrValue {
            fn from(x: $t) -> AttrValue { AttrValue::$v($conv(x)) }
        })*
    };
}
attr_from!(
    u64 => U64 via (|x| x),
    u32 => U64 via (|x: u32| x as u64),
    usize => U64 via (|x: usize| x as u64),
    i64 => I64 via (|x| x),
    f64 => F64 via (|x| x),
    bool => Bool via (|x| x),
    String => Str via (|x| x)
);
impl From<&str> for AttrValue {
    fn from(x: &str) -> AttrValue {
        AttrValue::Str(x.to_string())
    }
}

/// One finished span.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanRecord {
    /// Span name, e.g. `"mcs.round.sort"`.
    pub name: &'static str,
    /// Start offset from the collector epoch (first telemetry use), ns.
    pub start_ns: u64,
    /// Duration, ns.
    pub dur_ns: u64,
    /// Small dense id of the emitting thread.
    pub thread: u64,
    /// Attributes, in insertion order.
    pub attrs: Vec<(&'static str, AttrValue)>,
}

/// Aggregated histogram state: log₂ buckets plus exact count/sum/min/max.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSummary {
    /// Number of recorded values.
    pub count: u64,
    /// Sum of recorded values.
    pub sum: u64,
    /// Smallest recorded value.
    pub min: u64,
    /// Largest recorded value.
    pub max: u64,
    /// `buckets[i]` counts values with `i` significant bits
    /// (bucket 0 holds the value 0).
    pub buckets: Vec<u64>,
}

#[cfg(feature = "enabled")]
impl HistogramSummary {
    fn new() -> HistogramSummary {
        HistogramSummary {
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
            buckets: vec![0; 65],
        }
    }

    fn record(&mut self, v: u64) {
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
        self.buckets[(64 - v.leading_zeros()) as usize] += 1;
    }
}

/// Everything the collector holds, drained atomically by [`take_all`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TelemetrySnapshot {
    /// Finished spans in completion order.
    pub spans: Vec<SpanRecord>,
    /// Counter totals.
    pub counters: Vec<(&'static str, u64)>,
    /// Histogram summaries.
    pub histograms: Vec<(&'static str, HistogramSummary)>,
    /// Spans discarded because the in-memory cap was reached.
    pub spans_dropped: u64,
}

#[cfg(feature = "enabled")]
mod active {
    use super::{AttrValue, HistogramSummary, SpanRecord, TelemetrySnapshot};
    use std::collections::BTreeMap;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::{Mutex, OnceLock};
    use std::time::Instant;

    /// Upper bound on buffered spans; beyond it spans are counted but
    /// dropped, so long benchmark loops cannot exhaust memory.
    const MAX_SPANS: usize = 1 << 20;

    #[derive(Default)]
    struct Collector {
        spans: Vec<SpanRecord>,
        counters: BTreeMap<&'static str, u64>,
        histograms: BTreeMap<&'static str, HistogramSummary>,
        spans_dropped: u64,
    }

    fn collector() -> &'static Mutex<Collector> {
        static C: OnceLock<Mutex<Collector>> = OnceLock::new();
        C.get_or_init(|| Mutex::new(Collector::default()))
    }

    fn epoch() -> Instant {
        static E: OnceLock<Instant> = OnceLock::new();
        *E.get_or_init(Instant::now)
    }

    fn thread_id() -> u64 {
        static NEXT: AtomicU64 = AtomicU64::new(0);
        thread_local! {
            static ID: u64 = NEXT.fetch_add(1, Ordering::Relaxed);
        }
        ID.with(|id| *id)
    }

    /// RAII span: measures from construction to drop.
    #[must_use = "a span measures until it is dropped"]
    pub struct SpanGuard {
        name: &'static str,
        start: Instant,
        start_ns: u64,
        attrs: Vec<(&'static str, AttrValue)>,
    }

    impl SpanGuard {
        /// Attach an attribute.
        pub fn attr(&mut self, key: &'static str, value: impl Into<AttrValue>) {
            self.attrs.push((key, value.into()));
        }
    }

    impl Drop for SpanGuard {
        fn drop(&mut self) {
            push_span(SpanRecord {
                name: self.name,
                start_ns: self.start_ns,
                dur_ns: self.start.elapsed().as_nanos() as u64,
                thread: thread_id(),
                attrs: std::mem::take(&mut self.attrs),
            });
        }
    }

    fn push_span(rec: SpanRecord) {
        let mut c = collector().lock().unwrap();
        if c.spans.len() >= MAX_SPANS {
            c.spans_dropped += 1;
        } else {
            c.spans.push(rec);
        }
    }

    /// Start a span.
    pub fn span(name: &'static str) -> SpanGuard {
        let e = epoch();
        SpanGuard {
            name,
            start: Instant::now(),
            start_ns: e.elapsed().as_nanos() as u64,
            attrs: Vec::new(),
        }
    }

    /// Record a span whose duration was measured by the caller.
    pub fn record_span(name: &'static str, dur_ns: u64, attrs: Vec<(&'static str, AttrValue)>) {
        let start_ns = epoch().elapsed().as_nanos() as u64;
        push_span(SpanRecord {
            name,
            start_ns: start_ns.saturating_sub(dur_ns),
            dur_ns,
            thread: thread_id(),
            attrs,
        });
    }

    /// Add to a monotonic counter.
    pub fn counter_add(name: &'static str, delta: u64) {
        let mut c = collector().lock().unwrap();
        *c.counters.entry(name).or_insert(0) += delta;
    }

    /// Record one value into a histogram.
    pub fn histogram_record(name: &'static str, value: u64) {
        let mut c = collector().lock().unwrap();
        c.histograms
            .entry(name)
            .or_insert_with(HistogramSummary::new)
            .record(value);
    }

    /// Whether this build collects telemetry.
    pub const fn is_enabled() -> bool {
        true
    }

    /// Drop everything collected so far.
    pub fn reset() {
        let mut c = collector().lock().unwrap();
        *c = Collector::default();
    }

    /// Drain the collector: spans, counters, and histograms, atomically.
    pub fn take_all() -> TelemetrySnapshot {
        let mut c = collector().lock().unwrap();
        let taken = std::mem::take(&mut *c);
        TelemetrySnapshot {
            spans: taken.spans,
            counters: taken.counters.into_iter().collect(),
            histograms: taken.histograms.into_iter().collect(),
            spans_dropped: taken.spans_dropped,
        }
    }

    /// Copy the collector contents without draining.
    pub fn snapshot() -> TelemetrySnapshot {
        let c = collector().lock().unwrap();
        TelemetrySnapshot {
            spans: c.spans.clone(),
            counters: c.counters.iter().map(|(&k, &v)| (k, v)).collect(),
            histograms: c.histograms.iter().map(|(&k, v)| (k, v.clone())).collect(),
            spans_dropped: c.spans_dropped,
        }
    }
}

#[cfg(not(feature = "enabled"))]
mod active {
    use super::{AttrValue, TelemetrySnapshot};

    /// Zero-sized stand-in for the RAII span guard.
    #[must_use = "a span measures until it is dropped"]
    pub struct SpanGuard;

    impl SpanGuard {
        /// No-op.
        #[inline(always)]
        pub fn attr(&mut self, _key: &'static str, _value: impl Into<AttrValue>) {}
    }

    /// No-op span.
    #[inline(always)]
    pub fn span(_name: &'static str) -> SpanGuard {
        SpanGuard
    }

    /// No-op.
    #[inline(always)]
    pub fn record_span(_name: &'static str, _dur_ns: u64, _attrs: Vec<(&'static str, AttrValue)>) {}

    /// No-op.
    #[inline(always)]
    pub fn counter_add(_name: &'static str, _delta: u64) {}

    /// No-op.
    #[inline(always)]
    pub fn histogram_record(_name: &'static str, _value: u64) {}

    /// Whether this build collects telemetry.
    #[inline(always)]
    pub const fn is_enabled() -> bool {
        false
    }

    /// No-op.
    #[inline(always)]
    pub fn reset() {}

    /// Always empty.
    #[inline(always)]
    pub fn take_all() -> TelemetrySnapshot {
        TelemetrySnapshot::default()
    }

    /// Always empty.
    #[inline(always)]
    pub fn snapshot() -> TelemetrySnapshot {
        TelemetrySnapshot::default()
    }
}

pub use active::{
    counter_add, histogram_record, is_enabled, record_span, reset, snapshot, span, take_all,
    SpanGuard,
};

// ---------------------------------------------------------------------------
// JSON-lines export (works in both builds; empty report when disabled).
// ---------------------------------------------------------------------------

fn json_escape(s: &str, out: &mut String) {
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
}

fn attr_json(v: &AttrValue, out: &mut String) {
    match v {
        AttrValue::U64(x) => out.push_str(&x.to_string()),
        AttrValue::I64(x) => out.push_str(&x.to_string()),
        AttrValue::F64(x) if x.is_finite() => out.push_str(&format!("{x}")),
        AttrValue::F64(_) => out.push_str("null"),
        AttrValue::Bool(x) => out.push_str(if *x { "true" } else { "false" }),
        AttrValue::Str(s) => {
            out.push('"');
            json_escape(s, out);
            out.push('"');
        }
    }
}

/// Render a snapshot as JSON lines: one `span` object per span, then one
/// `counter` object per counter, one `histogram` per histogram, and a
/// final `meta` line with totals.
pub fn render_jsonl(snap: &TelemetrySnapshot) -> String {
    let mut out = String::new();
    for s in &snap.spans {
        out.push_str("{\"type\":\"span\",\"name\":\"");
        json_escape(s.name, &mut out);
        out.push_str(&format!(
            "\",\"start_ns\":{},\"dur_ns\":{},\"thread\":{}",
            s.start_ns, s.dur_ns, s.thread
        ));
        if !s.attrs.is_empty() {
            out.push_str(",\"attrs\":{");
            for (i, (k, v)) in s.attrs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push('"');
                json_escape(k, &mut out);
                out.push_str("\":");
                attr_json(v, &mut out);
            }
            out.push('}');
        }
        out.push_str("}\n");
    }
    for (name, v) in &snap.counters {
        out.push_str("{\"type\":\"counter\",\"name\":\"");
        json_escape(name, &mut out);
        out.push_str(&format!("\",\"value\":{v}}}\n"));
    }
    for (name, h) in &snap.histograms {
        out.push_str("{\"type\":\"histogram\",\"name\":\"");
        json_escape(name, &mut out);
        out.push_str(&format!(
            "\",\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"buckets\":[",
            h.count,
            h.sum,
            if h.count == 0 { 0 } else { h.min },
            h.max
        ));
        let mut first = true;
        for (bit, &c) in h.buckets.iter().enumerate() {
            if c > 0 {
                if !first {
                    out.push(',');
                }
                first = false;
                out.push_str(&format!("[{bit},{c}]"));
            }
        }
        out.push_str("]}\n");
    }
    out.push_str(&format!(
        "{{\"type\":\"meta\",\"spans\":{},\"counters\":{},\"histograms\":{},\"spans_dropped\":{},\"enabled\":{}}}\n",
        snap.spans.len(),
        snap.counters.len(),
        snap.histograms.len(),
        snap.spans_dropped,
        is_enabled()
    ));
    out
}

/// Drain the collector and write it to `path` as JSON lines, creating
/// parent directories as needed. With telemetry disabled this writes a
/// report containing only the `meta` line.
pub fn export_jsonl(path: impl AsRef<Path>) -> std::io::Result<()> {
    let path = path.as_ref();
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    std::fs::write(path, render_jsonl(&take_all()))
}

/// Drain the collector into `dir/<run>.jsonl` (the run-report convention:
/// `results/telemetry/*.jsonl`) and return the path written.
pub fn write_run_report(dir: impl AsRef<Path>, run: &str) -> std::io::Result<PathBuf> {
    let path = dir.as_ref().join(format!("{run}.jsonl"));
    export_jsonl(&path)?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[cfg(feature = "enabled")]
    mod enabled {
        use super::super::*;
        use std::sync::{Mutex, OnceLock};

        /// Tests in this module share the process-global collector;
        /// serialize them.
        fn lock() -> std::sync::MutexGuard<'static, ()> {
            static L: OnceLock<Mutex<()>> = OnceLock::new();
            L.get_or_init(|| Mutex::new(()))
                .lock()
                .unwrap_or_else(|e| e.into_inner())
        }

        #[test]
        fn spans_record_names_attrs_and_duration() {
            let _g = lock();
            reset();
            {
                let mut s = span("test.outer");
                s.attr("rows", 42u64);
                s.attr("label", "hello");
                let _inner = span("test.inner");
            }
            record_span("test.manual", 123, vec![("k", AttrValue::U64(7))]);
            let snap = take_all();
            let names: Vec<&str> = snap.spans.iter().map(|s| s.name).collect();
            // Inner drops before outer; manual comes last.
            assert_eq!(names, vec!["test.inner", "test.outer", "test.manual"]);
            let outer = &snap.spans[1];
            assert_eq!(outer.attrs[0], ("rows", AttrValue::U64(42)));
            assert_eq!(outer.attrs[1], ("label", AttrValue::Str("hello".into())));
            assert_eq!(snap.spans[2].dur_ns, 123);
            assert!(take_all().spans.is_empty(), "take_all drains");
        }

        #[test]
        fn counters_and_histograms_aggregate() {
            let _g = lock();
            reset();
            counter_add("test.ctr", 2);
            counter_add("test.ctr", 3);
            for v in [0u64, 1, 1, 7, 1024] {
                histogram_record("test.hist", v);
            }
            let snap = take_all();
            assert_eq!(snap.counters, vec![("test.ctr", 5)]);
            let (name, h) = &snap.histograms[0];
            assert_eq!(*name, "test.hist");
            assert_eq!(h.count, 5);
            assert_eq!(h.sum, 1033);
            assert_eq!(h.min, 0);
            assert_eq!(h.max, 1024);
            assert_eq!(h.buckets[0], 1); // the value 0
            assert_eq!(h.buckets[1], 2); // the two 1s
            assert_eq!(h.buckets[3], 1); // 7
            assert_eq!(h.buckets[11], 1); // 1024
        }

        #[test]
        fn spans_from_threads_all_arrive() {
            let _g = lock();
            reset();
            std::thread::scope(|s| {
                for _ in 0..4 {
                    s.spawn(|| drop(span("test.worker")));
                }
            });
            let snap = take_all();
            assert_eq!(snap.spans.len(), 4);
            // Thread ids are distinct per worker.
            let mut tids: Vec<u64> = snap.spans.iter().map(|s| s.thread).collect();
            tids.sort_unstable();
            tids.dedup();
            assert_eq!(tids.len(), 4);
        }

        #[test]
        fn jsonl_escapes_and_shapes() {
            let _g = lock();
            reset();
            record_span(
                "test.json",
                5,
                vec![
                    ("s", AttrValue::Str("a\"b\\c\nd".into())),
                    ("f", AttrValue::F64(1.5)),
                    ("b", AttrValue::Bool(true)),
                ],
            );
            counter_add("c", 1);
            let text = render_jsonl(&take_all());
            let lines: Vec<&str> = text.lines().collect();
            assert_eq!(lines.len(), 3); // span + counter + meta
            assert!(lines[0].contains("\"attrs\":{\"s\":\"a\\\"b\\\\c\\nd\",\"f\":1.5,\"b\":true}"));
            assert!(lines[1].contains("\"type\":\"counter\""));
            assert!(lines[2].contains("\"enabled\":true"));
        }

        #[test]
        fn export_writes_file() {
            let _g = lock();
            reset();
            drop(span("test.export"));
            let dir = std::env::temp_dir().join("mcs-telemetry-test");
            let path = write_run_report(&dir, "unit").unwrap();
            let text = std::fs::read_to_string(&path).unwrap();
            assert!(text.contains("test.export"));
            std::fs::remove_file(path).ok();
        }
    }

    #[cfg(not(feature = "enabled"))]
    #[test]
    fn disabled_build_is_inert() {
        let mut s = span("ignored");
        s.attr("k", 1u64);
        drop(s);
        counter_add("c", 1);
        histogram_record("h", 1);
        assert!(!is_enabled());
        let snap = take_all();
        assert!(snap.spans.is_empty() && snap.counters.is_empty());
        let text = render_jsonl(&snap);
        assert!(text.contains("\"enabled\":false"));
        assert_eq!(text.lines().count(), 1);
    }

    #[test]
    fn attr_conversions() {
        assert_eq!(AttrValue::from(3u32), AttrValue::U64(3));
        assert_eq!(AttrValue::from(3usize), AttrValue::U64(3));
        assert_eq!(AttrValue::from(true), AttrValue::Bool(true));
        assert_eq!(AttrValue::from("x"), AttrValue::Str("x".into()));
    }
}
