//! A counting [`GlobalAlloc`] wrapper for allocation-budget tests.
//!
//! Install [`CountingAlloc`] as the test binary's global allocator and
//! read [`allocation_count`] before/after a bracket of work to count
//! how many heap allocations it performed:
//!
//! ```ignore
//! #[global_allocator]
//! static ALLOC: mcs_test_support::CountingAlloc = mcs_test_support::CountingAlloc;
//!
//! let before = mcs_test_support::thread_allocation_count();
//! run_warm_query();
//! let allocs = mcs_test_support::thread_allocation_count() - before;
//! ```
//!
//! Two counters are maintained, both bumped on every `alloc` /
//! `alloc_zeroed` / `realloc` (frees are not counted — a budget of zero
//! allocations implies zero frees of fresh memory):
//!
//! - a process-global [`AtomicU64`], read by [`allocation_count`]:
//!   exact only while no *other* thread allocates inside the bracket, so
//!   use it for single-threaded brackets only;
//! - a thread-local `Cell<u64>`, read by [`thread_allocation_count`]:
//!   counts only the calling thread's allocations, so a bracket on one
//!   worker is immune to concurrent allocation on its siblings. This is
//!   the probe concurrent zero-allocation assertions must use — the
//!   executor's round loop runs entirely on the thread that samples the
//!   probe, so the thread-local delta is exactly its own allocation
//!   count no matter what the rest of the process is doing.
//!
//! Both functions match the executor's `ExecConfig::alloc_probe`
//! signature (`fn() -> u64`), which samples the probe immediately around
//! the round loop for a tight bracket.

// The `GlobalAlloc` trait is unsafe by definition; this module is the
// only place in the crate allowed to use it.
#![allow(unsafe_code)]

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

thread_local! {
    // `const` init keeps first access allocation-free, and a plain Cell
    // has no destructor, so `try_with` below can only fail during thread
    // teardown — where missing a count is harmless.
    static THREAD_ALLOCATIONS: Cell<u64> = const { Cell::new(0) };
}

#[inline]
fn count_one() {
    ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
    // `try_with`, not `with`: the allocator may be re-entered while this
    // thread's TLS is being torn down, and panicking inside `alloc`
    // would abort the process.
    let _ = THREAD_ALLOCATIONS.try_with(|c| c.set(c.get() + 1));
}

/// Heap allocations observed process-wide since startup. Only counts
/// while [`CountingAlloc`] is installed as the `#[global_allocator]`;
/// otherwise it stays at zero.
pub fn allocation_count() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

/// Heap allocations performed *by the calling thread* since it started.
/// Only counts while [`CountingAlloc`] is installed as the
/// `#[global_allocator]`; otherwise it stays at zero.
///
/// Use this (not [`allocation_count`]) as the `alloc_probe` whenever
/// other threads may allocate during the probed bracket — e.g. warm
/// zero-allocation assertions under concurrent query execution.
pub fn thread_allocation_count() -> u64 {
    THREAD_ALLOCATIONS.try_with(Cell::get).unwrap_or(0)
}

/// A [`System`]-backed allocator that counts every allocation.
///
/// Zero-sized and stateless: install it with
/// `#[global_allocator] static A: CountingAlloc = CountingAlloc;`.
#[derive(Debug, Default, Clone, Copy)]
pub struct CountingAlloc;

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        count_one();
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        count_one();
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        // A realloc that moves (or grows in place) is still one trip to
        // the allocator: count it like a fresh allocation.
        count_one();
        System.realloc(ptr, layout, new_size)
    }
}
