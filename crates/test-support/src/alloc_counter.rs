//! A counting [`GlobalAlloc`] wrapper for allocation-budget tests.
//!
//! Install [`CountingAlloc`] as the test binary's global allocator and
//! read [`allocation_count`] before/after a bracket of work to count
//! how many heap allocations it performed:
//!
//! ```ignore
//! #[global_allocator]
//! static ALLOC: mcs_test_support::CountingAlloc = mcs_test_support::CountingAlloc;
//!
//! let before = mcs_test_support::allocation_count();
//! run_warm_query();
//! let allocs = mcs_test_support::allocation_count() - before;
//! ```
//!
//! The counter is a single process-global [`AtomicU64`] bumped on every
//! `alloc` / `alloc_zeroed` / `realloc` (frees are not counted — a
//! budget of zero allocations implies zero frees of fresh memory).
//! Counting is exact only while no *other* thread allocates inside the
//! bracket, so zero-allocation assertions should run single-threaded.
//! [`allocation_count`] also matches the executor's
//! `ExecConfig::alloc_probe` signature (`fn() -> u64`), which samples it
//! immediately around the round loop for a tighter bracket.

// The `GlobalAlloc` trait is unsafe by definition; this module is the
// only place in the crate allowed to use it.
#![allow(unsafe_code)]

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

/// Heap allocations observed process-wide since startup. Only counts
/// while [`CountingAlloc`] is installed as the `#[global_allocator]`;
/// otherwise it stays at zero.
pub fn allocation_count() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

/// A [`System`]-backed allocator that counts every allocation.
///
/// Zero-sized and stateless: install it with
/// `#[global_allocator] static A: CountingAlloc = CountingAlloc;`.
#[derive(Debug, Default, Clone, Copy)]
pub struct CountingAlloc;

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        // A realloc that moves (or grows in place) is still one trip to
        // the allocator: count it like a fresh allocation.
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}
