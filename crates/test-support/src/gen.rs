//! Seeded workload generators for differential testing.
//!
//! Produces multi-column sort inputs covering the axes the oracle
//! harness must exercise: random column widths (1..=64 bits, capped so
//! the concatenated key fits one 64-bit word), ASC/DESC mixes, and a
//! set of value distributions from uniform through adversarial
//! (all-equal, pre-sorted, reverse-sorted, organ-pipe), plus the
//! degenerate shapes n=0, n=1, and width=1.

use crate::oracle::SortProblem;
use crate::rng::Rng;

/// One sort column: bit width and direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ColumnSpec {
    /// Bits per code, 1..=64.
    pub width: u32,
    /// Sort descending instead of ascending.
    pub descending: bool,
}

/// Value distribution for generated codes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Dist {
    /// Uniform over the column's full domain.
    Uniform,
    /// Heavy duplication: codes drawn from ~sqrt(n) distinct values.
    DupHeavy,
    /// Zipf-like skew: value v with probability ∝ 1/(v+1).
    Skewed,
    /// Every code identical — one giant tie group.
    AllEqual,
    /// Already sorted ascending (worst case for naive pivoting).
    Sorted,
    /// Sorted descending.
    Reversed,
    /// Organ pipe: ascending then descending run.
    OrganPipe,
}

impl Dist {
    /// Every distribution, for exhaustive sweeps.
    pub const ALL: [Dist; 7] = [
        Dist::Uniform,
        Dist::DupHeavy,
        Dist::Skewed,
        Dist::AllEqual,
        Dist::Sorted,
        Dist::Reversed,
        Dist::OrganPipe,
    ];
}

/// Largest code representable in `width` bits.
#[inline]
pub fn width_mask(width: u32) -> u64 {
    debug_assert!((1..=64).contains(&width));
    u64::MAX >> (64 - width)
}

/// Generate `n` codes of `width` bits following `dist`.
pub fn gen_codes(rng: &mut Rng, n: usize, width: u32, dist: Dist) -> Vec<u64> {
    let mask = width_mask(width);
    match dist {
        Dist::Uniform => (0..n).map(|_| rng.gen::<u64>() & mask).collect(),
        Dist::DupHeavy => {
            let ndv = ((n as f64).sqrt().ceil() as u64).clamp(1, mask.saturating_add(1).max(1));
            let pool: Vec<u64> = (0..ndv).map(|_| rng.gen::<u64>() & mask).collect();
            (0..n).map(|_| *rng.choose(&pool)).collect()
        }
        Dist::Skewed => (0..n)
            .map(|_| {
                // Discrete approximation of 1/(v+1): exponentiate a
                // uniform draw so small values dominate.
                let u: f64 = rng.gen();
                let v = ((mask as f64 + 1.0).powf(u) - 1.0) as u64;
                v.min(mask)
            })
            .collect(),
        Dist::AllEqual => {
            let v = rng.gen::<u64>() & mask;
            vec![v; n]
        }
        Dist::Sorted => {
            let mut v = gen_codes(rng, n, width, Dist::Uniform);
            v.sort_unstable();
            v
        }
        Dist::Reversed => {
            let mut v = gen_codes(rng, n, width, Dist::Uniform);
            v.sort_unstable_by(|a, b| b.cmp(a));
            v
        }
        Dist::OrganPipe => {
            let mut v = gen_codes(rng, n, width, Dist::Uniform);
            v.sort_unstable();
            let half = n / 2;
            v[half..].reverse();
            v
        }
    }
}

/// Random column specs: `1..=max_cols` columns, widths 1..=64, total
/// width capped at `max_total_width` (which may exceed 64 — the
/// executor handles multi-round totals), each direction a coin flip.
pub fn random_specs(rng: &mut Rng, max_cols: usize, max_total_width: u32) -> Vec<ColumnSpec> {
    assert!(max_total_width >= 1);
    let k = rng.gen_range(1..=max_cols.max(1));
    let mut specs = Vec::with_capacity(k);
    let mut remaining = max_total_width;
    for i in 0..k {
        if remaining == 0 {
            break;
        }
        let cols_left = (k - i) as u32;
        // Leave at least 1 bit for each remaining column.
        let hi = remaining.saturating_sub(cols_left - 1).clamp(1, 64);
        let width = rng.gen_range(1..=hi);
        specs.push(ColumnSpec {
            width,
            descending: rng.gen_bool(0.5),
        });
        remaining -= width;
    }
    specs
}

/// Generate a full [`SortProblem`]: one column of codes per spec.
pub fn gen_problem(rng: &mut Rng, n: usize, specs: &[ColumnSpec], dist: Dist) -> SortProblem {
    let columns = specs
        .iter()
        .map(|s| gen_codes(rng, n, s.width, dist))
        .collect();
    SortProblem {
        columns,
        widths: specs.iter().map(|s| s.width).collect(),
        descending: specs.iter().map(|s| s.descending).collect(),
    }
}

/// Degenerate problems every harness should cover: n=0, n=1, and a
/// width-1 column with ties.
pub fn degenerate_problems(rng: &mut Rng) -> Vec<(&'static str, SortProblem)> {
    let two = [
        ColumnSpec {
            width: 7,
            descending: false,
        },
        ColumnSpec {
            width: 3,
            descending: true,
        },
    ];
    let one_bit = [ColumnSpec {
        width: 1,
        descending: false,
    }];
    vec![
        ("n=0", gen_problem(rng, 0, &two, Dist::Uniform)),
        ("n=1", gen_problem(rng, 1, &two, Dist::Uniform)),
        ("width=1", gen_problem(rng, 257, &one_bit, Dist::Uniform)),
        (
            "width=1 all-equal",
            gen_problem(rng, 64, &one_bit, Dist::AllEqual),
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_respect_width() {
        let mut rng = Rng::seed_from_u64(5);
        for dist in Dist::ALL {
            for width in [1u32, 2, 7, 16, 33, 64] {
                let codes = gen_codes(&mut rng, 200, width, dist);
                assert_eq!(codes.len(), 200);
                let mask = width_mask(width);
                assert!(
                    codes.iter().all(|&c| c <= mask),
                    "{dist:?} width {width} leaked past mask"
                );
            }
        }
    }

    #[test]
    fn specs_respect_total_width() {
        let mut rng = Rng::seed_from_u64(6);
        for _ in 0..500 {
            let specs = random_specs(&mut rng, 5, 64);
            assert!(!specs.is_empty());
            let total: u32 = specs.iter().map(|s| s.width).sum();
            assert!((1..=64).contains(&total), "total {total}");
            assert!(specs.iter().all(|s| s.width >= 1));
        }
    }

    #[test]
    fn both_directions_appear() {
        let mut rng = Rng::seed_from_u64(7);
        let mut asc = false;
        let mut desc = false;
        for _ in 0..200 {
            for s in random_specs(&mut rng, 4, 32) {
                if s.descending {
                    desc = true;
                } else {
                    asc = true;
                }
            }
        }
        assert!(asc && desc);
    }

    #[test]
    fn dup_heavy_actually_duplicates() {
        let mut rng = Rng::seed_from_u64(8);
        let codes = gen_codes(&mut rng, 1000, 40, Dist::DupHeavy);
        let mut uniq = codes.clone();
        uniq.sort_unstable();
        uniq.dedup();
        assert!(uniq.len() <= 40, "ndv {} too high for DupHeavy", uniq.len());
    }

    #[test]
    fn degenerate_shapes() {
        let mut rng = Rng::seed_from_u64(9);
        let probs = degenerate_problems(&mut rng);
        assert_eq!(probs[0].1.num_rows(), 0);
        assert_eq!(probs[1].1.num_rows(), 1);
        assert!(probs[2].1.widths == vec![1]);
    }
}
