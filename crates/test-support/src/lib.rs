//! # mcs-test-support
//!
//! The shared differential-testing substrate for the workspace. The
//! repo builds in fully offline environments, so instead of `rand` /
//! `proptest` / `criterion` this crate provides, with zero external
//! dependencies:
//!
//! * [`rng`] — a seeded xoshiro256++ PRNG with a `rand`-style API
//!   (`seed_from_u64`, `gen`, `gen_range`, `gen_bool`, `shuffle`);
//! * [`prop`] — a mini property-test harness (`PROPTEST_CASES` caps the
//!   case count, `MCS_TEST_SEED` replays one failing case);
//! * [`gen`] — seeded multi-column workload generators: random widths,
//!   ASC/DESC mixes, uniform / duplicate-heavy / skewed / adversarial
//!   distributions, and the degenerate shapes n=0, n=1, width=1;
//! * [`oracle`] — a naive scalar reference that sorts row tuples
//!   lexicographically and derives group bounds, ranks, and aggregates,
//!   plus [`oracle::assert_matches_reference`] for comparing an engine
//!   result against it;
//! * [`microbench`] — a criterion-compatible micro-benchmark shim for
//!   the `[[bench]]` targets;
//! * [`alloc_counter`] — a counting `GlobalAlloc` wrapper so tests can
//!   assert allocation budgets (e.g. the warm-arena zero-allocation
//!   round loop).
//!
//! The oracle operates on plain `Vec<u64>` columns and shares no code
//! with the massage/SIMD pipeline, which is what makes the comparison a
//! differential test rather than a tautology.

// Only `alloc_counter` needs `unsafe` (the `GlobalAlloc` trait is
// unsafe by definition); everything else stays forbidden per-module.
#![deny(unsafe_code)]

pub mod alloc_counter;
pub mod gen;
pub mod microbench;
pub mod oracle;
pub mod prop;
pub mod rng;

pub use alloc_counter::{allocation_count, thread_allocation_count, CountingAlloc};
pub use gen::{degenerate_problems, gen_codes, gen_problem, random_specs, ColumnSpec, Dist};
pub use oracle::{
    assert_matches_reference, reference_aggregates, reference_rank, reference_sort,
    GroupAggregates, Reference, SortProblem,
};
pub use prop::{check, num_cases};
pub use rng::Rng;
