//! A criterion-compatible micro-benchmark shim.
//!
//! The `criterion` crate cannot be fetched in offline builds, so this
//! module reimplements the small API surface the workspace's bench
//! targets use: `criterion_group!` / `criterion_main!`, `Criterion`,
//! `BenchmarkGroup` (throughput, sample_size, measurement_time,
//! warm_up_time, bench_function, finish), `BenchmarkId`, and
//! `Throughput`. Timing is wall-clock `Instant` with median-of-samples
//! reporting — good enough to spot order-of-magnitude regressions, not
//! a statistics engine.
//!
//! Set `MCS_BENCH_FAST=1` to clamp warm-up/measurement to a few
//! milliseconds (used by CI smoke runs).

use std::fmt::Display;
use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Re-exported opaque-value barrier, same contract as criterion's.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Work-per-iteration unit, for derived throughput reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A `group/function/parameter` benchmark label.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// `BenchmarkId::new("gather_u32", n)` → `gather_u32/n`.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            name: format!("{}/{}", function.into(), parameter),
        }
    }
}

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Fresh driver (mirrors `Criterion::default()`).
    pub fn new() -> Self {
        Criterion::default()
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        BenchmarkGroup {
            name: name.into(),
            throughput: None,
            sample_size: 10,
            measurement_time: Duration::from_secs(2),
            warm_up_time: Duration::from_millis(500),
        }
    }
}

fn fast_mode() -> bool {
    std::env::var("MCS_BENCH_FAST").is_ok_and(|v| v != "0" && !v.is_empty())
}

/// A group of benchmarks sharing timing configuration.
pub struct BenchmarkGroup {
    name: String,
    throughput: Option<Throughput>,
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl BenchmarkGroup {
    /// Declare work-per-iteration for throughput reporting.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Number of timed samples to collect.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Total measurement budget.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Warm-up budget before sampling starts.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up_time = d;
        self
    }

    /// Run one benchmark.
    pub fn bench_function<F>(&mut self, id: BenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let (warm_up, budget) = if fast_mode() {
            (Duration::from_millis(1), Duration::from_millis(5))
        } else {
            (self.warm_up_time, self.measurement_time)
        };

        // Warm-up: run until the budget is spent (at least once).
        let mut b = Bencher {
            elapsed: Duration::ZERO,
            iters: 0,
        };
        let t0 = Instant::now();
        loop {
            f(&mut b);
            if t0.elapsed() >= warm_up {
                break;
            }
        }

        // Sampling: collect per-sample mean iteration times.
        let mut samples: Vec<f64> = Vec::with_capacity(self.sample_size);
        let t0 = Instant::now();
        for _ in 0..self.sample_size {
            let mut s = Bencher {
                elapsed: Duration::ZERO,
                iters: 0,
            };
            f(&mut s);
            if s.iters > 0 {
                samples.push(s.elapsed.as_nanos() as f64 / s.iters as f64);
            }
            if t0.elapsed() >= budget {
                break;
            }
        }
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = samples.get(samples.len() / 2).copied().unwrap_or(f64::NAN);
        let best = samples.first().copied().unwrap_or(f64::NAN);

        let mut line = format!(
            "bench {:<40} median {:>12.1} ns/iter  best {:>12.1} ns/iter",
            format!("{}/{}", self.name, id.name),
            median,
            best
        );
        if let Some(t) = self.throughput {
            let (work, unit) = match t {
                Throughput::Elements(n) => (n as f64, "Melem/s"),
                Throughput::Bytes(n) => (n as f64, "MB/s"),
            };
            if median > 0.0 {
                line.push_str(&format!("  {:>10.1} {}", work / median * 1e3, unit));
            }
        }
        println!("{line}");
        self
    }

    /// End the group (criterion compatibility; prints a separator).
    pub fn finish(&mut self) {
        println!("group {} done", self.name);
    }
}

/// Passed to the closure of `bench_function`; `iter` times the payload.
pub struct Bencher {
    elapsed: Duration,
    iters: u64,
}

impl Bencher {
    /// Time one execution of `routine` (criterion runs many per sample;
    /// we run one and accumulate, which keeps closures with per-iter
    /// setup cost honest enough for regression spotting).
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let t = Instant::now();
        let out = routine();
        self.elapsed += t.elapsed();
        self.iters += 1;
        std_black_box(out);
    }
}

/// Declare a benchmark group runner, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::microbench::Criterion::new();
            $( $target(&mut c); )+
        }
    };
}

/// Declare `fn main` running the given groups, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        std::env::set_var("MCS_BENCH_FAST", "1");
        let mut c = Criterion::new();
        let mut g = c.benchmark_group("shim_self_test");
        g.throughput(Throughput::Elements(64));
        g.sample_size(3);
        let mut ran = 0u32;
        g.bench_function(BenchmarkId::new("sum", 64), |b| {
            ran += 1;
            b.iter(|| (0u64..64).sum::<u64>())
        });
        g.finish();
        assert!(ran > 0);
    }
}
