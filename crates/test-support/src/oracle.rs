//! The scalar reference oracle.
//!
//! A deliberately naive implementation of multi-column ORDER BY:
//! materialize row tuples, sort them with `slice::sort_by` under the §3
//! comparator (per-column, direction via one's-complement on the
//! column's width), and derive group bounds, ranks, and aggregates by
//! direct scans. It shares no code with the engine's massage/SIMD
//! pipeline, so any agreement between the two is meaningful.

use crate::rng::Rng;

/// A multi-column sort instance over plain `u64` codes.
///
/// `columns[c][r]` is row `r`'s code in column `c`; every code is
/// `< 2^widths[c]`. Total width may exceed 64 — the oracle compares
/// column-by-column and never concatenates.
#[derive(Debug, Clone)]
pub struct SortProblem {
    /// Per-column codes, all the same length.
    pub columns: Vec<Vec<u64>>,
    /// Per-column bit widths (1..=64).
    pub widths: Vec<u32>,
    /// Per-column direction (true = DESC).
    pub descending: Vec<bool>,
}

impl SortProblem {
    /// Number of rows.
    pub fn num_rows(&self) -> usize {
        self.columns.first().map_or(0, |c| c.len())
    }

    /// Number of sort columns.
    pub fn num_cols(&self) -> usize {
        self.columns.len()
    }

    /// Row `r`'s code in column `c`, direction-adjusted so that plain
    /// ascending comparison realizes the requested order.
    #[inline]
    pub fn adjusted(&self, c: usize, r: usize) -> u64 {
        let v = self.columns[c][r];
        if self.descending[c] {
            v ^ (u64::MAX >> (64 - self.widths[c]))
        } else {
            v
        }
    }

    /// The §3 ORDER BY comparator between rows `a` and `b`.
    pub fn cmp_rows(&self, a: usize, b: usize) -> core::cmp::Ordering {
        for c in 0..self.num_cols() {
            match self.adjusted(c, a).cmp(&self.adjusted(c, b)) {
                core::cmp::Ordering::Equal => continue,
                other => return other,
            }
        }
        core::cmp::Ordering::Equal
    }
}

/// What the naive reference computes for a [`SortProblem`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Reference {
    /// Row indices in sorted order (stable: ties keep input order).
    pub order: Vec<u32>,
    /// Tie-group boundaries over the sorted order, in `GroupBounds`
    /// offset format: `[0, …, n]` (and `[0, 0]` for n = 0).
    pub group_offsets: Vec<u32>,
}

impl Reference {
    /// Number of tie groups.
    pub fn num_groups(&self) -> usize {
        self.group_offsets.len() - 1
    }

    /// Iterate groups as ranges over the sorted order.
    pub fn groups(&self) -> impl Iterator<Item = core::ops::Range<usize>> + '_ {
        self.group_offsets
            .windows(2)
            .map(|w| w[0] as usize..w[1] as usize)
    }
}

/// Sort the problem naively and derive the tie groups.
pub fn reference_sort(p: &SortProblem) -> Reference {
    let n = p.num_rows();
    let mut order: Vec<u32> = (0..n as u32).collect();
    order.sort_by(|&a, &b| p.cmp_rows(a as usize, b as usize));

    let mut group_offsets = vec![0u32];
    for i in 1..n {
        if p.cmp_rows(order[i - 1] as usize, order[i] as usize) != core::cmp::Ordering::Equal {
            group_offsets.push(i as u32);
        }
    }
    group_offsets.push(n as u32);
    Reference {
        order,
        group_offsets,
    }
}

/// SQL `RANK()` computed the slow way: within each partition, a row's
/// rank is 1 + the count of rows in that partition with a strictly
/// smaller window key. Independent of the engine's running-counter
/// formulation.
pub fn reference_rank(partition_offsets: &[u32], window_keys: &[u64]) -> Vec<u64> {
    let mut out = vec![0u64; window_keys.len()];
    for w in partition_offsets.windows(2) {
        let (start, end) = (w[0] as usize, w[1] as usize);
        for p in start..end {
            let smaller = (start..end)
                .filter(|&q| window_keys[q] < window_keys[p])
                .count();
            out[p] = smaller as u64 + 1;
        }
    }
    out
}

/// Per-group aggregates over a value column, in sorted order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GroupAggregates {
    /// Row count per group.
    pub counts: Vec<u64>,
    /// Sum per group (wrapping, to stay total on adversarial inputs).
    pub sums: Vec<u64>,
    /// Min per group (`u64::MAX` for an empty group).
    pub mins: Vec<u64>,
    /// Max per group (0 for an empty group).
    pub maxs: Vec<u64>,
}

/// Aggregate `values[order[p]]` over each group.
pub fn reference_aggregates(reference: &Reference, values: &[u64]) -> GroupAggregates {
    let mut agg = GroupAggregates {
        counts: Vec::with_capacity(reference.num_groups()),
        sums: Vec::with_capacity(reference.num_groups()),
        mins: Vec::with_capacity(reference.num_groups()),
        maxs: Vec::with_capacity(reference.num_groups()),
    };
    for g in reference.groups() {
        let mut count = 0u64;
        let mut sum = 0u64;
        let mut min = u64::MAX;
        let mut max = 0u64;
        for p in g {
            let v = values[reference.order[p] as usize];
            count += 1;
            sum = sum.wrapping_add(v);
            min = min.min(v);
            max = max.max(v);
        }
        agg.counts.push(count);
        agg.sums.push(sum);
        agg.mins.push(min);
        agg.maxs.push(max);
    }
    agg
}

/// Assert an engine result matches the reference for `p`.
///
/// Checks, in order:
/// 1. `oids` is a permutation of `0..n`;
/// 2. the tuple sequence along `oids` equals the reference's (engines may
///    permute rows *within* a tie group, so tuples are compared, not oids);
/// 3. if `group_offsets` is given, it equals the reference's exactly, and
///    each group holds exactly the same set of rows as the reference's.
///
/// Panics with a labelled diagnostic on the first divergence.
pub fn assert_matches_reference(
    label: &str,
    p: &SortProblem,
    reference: &Reference,
    oids: &[u32],
    group_offsets: Option<&[u32]>,
) {
    let n = p.num_rows();
    assert_eq!(oids.len(), n, "[{label}] oid count");
    let mut seen = vec![false; n];
    for &o in oids {
        assert!(
            (o as usize) < n && !seen[o as usize],
            "[{label}] oids are not a permutation (oid {o})"
        );
        seen[o as usize] = true;
    }
    for (pos, (&got, &want)) in oids.iter().zip(&reference.order).enumerate() {
        assert_eq!(
            p.cmp_rows(got as usize, want as usize),
            core::cmp::Ordering::Equal,
            "[{label}] tuple mismatch at output position {pos}: engine row {got}, reference row {want}"
        );
    }
    if let Some(offsets) = group_offsets {
        assert_eq!(
            offsets,
            &reference.group_offsets[..],
            "[{label}] group bounds diverge from reference"
        );
        for g in reference.groups() {
            let mut got: Vec<u32> = oids[g.clone()].to_vec();
            let mut want: Vec<u32> = reference.order[g.clone()].to_vec();
            got.sort_unstable();
            want.sort_unstable();
            assert_eq!(
                got, want,
                "[{label}] group {g:?} holds different rows than reference"
            );
        }
    }
}

/// Shuffle the rows of a problem in place (columns stay aligned).
/// Useful for turning sorted/adversarial layouts into permuted variants
/// with identical value multisets.
pub fn shuffle_rows(p: &mut SortProblem, rng: &mut Rng) {
    let n = p.num_rows();
    for i in (1..n).rev() {
        let j = rng.gen_range(0..=i);
        for c in &mut p.columns {
            c.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn problem(cols: Vec<(u32, bool, Vec<u64>)>) -> SortProblem {
        SortProblem {
            widths: cols.iter().map(|c| c.0).collect(),
            descending: cols.iter().map(|c| c.1).collect(),
            columns: cols.into_iter().map(|c| c.2).collect(),
        }
    }

    #[test]
    fn sorts_lexicographically_with_directions() {
        // ORDER BY a ASC, b DESC.
        let p = problem(vec![(3, false, vec![2, 2, 7]), (3, true, vec![5, 1, 4])]);
        let r = reference_sort(&p);
        assert_eq!(r.order, vec![0, 1, 2]);
        assert_eq!(r.group_offsets, vec![0, 1, 2, 3]);
    }

    #[test]
    fn stable_on_ties_and_groups_cover_ties() {
        let p = problem(vec![(4, false, vec![3, 1, 3, 1, 3])]);
        let r = reference_sort(&p);
        assert_eq!(r.order, vec![1, 3, 0, 2, 4]);
        assert_eq!(r.group_offsets, vec![0, 2, 5]);
        assert_eq!(r.num_groups(), 2);
    }

    #[test]
    fn empty_and_singleton() {
        let p0 = problem(vec![(8, false, vec![])]);
        let r0 = reference_sort(&p0);
        assert_eq!(r0.order, Vec::<u32>::new());
        assert_eq!(r0.group_offsets, vec![0, 0]);

        let p1 = problem(vec![(8, true, vec![9])]);
        let r1 = reference_sort(&p1);
        assert_eq!(r1.order, vec![0]);
        assert_eq!(r1.group_offsets, vec![0, 1]);
    }

    #[test]
    fn rank_matches_counting_definition() {
        let ranks = reference_rank(&[0, 6], &[5, 5, 7, 9, 9, 9]);
        assert_eq!(ranks, vec![1, 1, 3, 4, 4, 4]);
        let ranks = reference_rank(&[0, 3, 6], &[1, 2, 2, 1, 1, 5]);
        assert_eq!(ranks, vec![1, 2, 2, 1, 1, 3]);
        assert!(reference_rank(&[0, 0], &[]).is_empty());
    }

    #[test]
    fn aggregates_per_group() {
        let p = problem(vec![(4, false, vec![3, 1, 3])]);
        let r = reference_sort(&p);
        let agg = reference_aggregates(&r, &[10, 20, 30]);
        // groups: {row1}, {row0, row2}
        assert_eq!(agg.counts, vec![1, 2]);
        assert_eq!(agg.sums, vec![20, 40]);
        assert_eq!(agg.mins, vec![20, 10]);
        assert_eq!(agg.maxs, vec![20, 30]);
    }

    #[test]
    fn matcher_accepts_within_group_permutations() {
        let p = problem(vec![(4, false, vec![3, 1, 3])]);
        let r = reference_sort(&p);
        // Reference order is [1, 0, 2]; swapping the tied rows 0/2 is OK.
        assert_matches_reference("swap-ok", &p, &r, &[1, 2, 0], Some(&r.group_offsets));
    }

    #[test]
    #[should_panic(expected = "tuple mismatch")]
    fn matcher_rejects_wrong_order() {
        let p = problem(vec![(4, false, vec![3, 1, 2])]);
        let r = reference_sort(&p);
        assert_matches_reference("bad", &p, &r, &[0, 1, 2], None);
    }

    #[test]
    fn shuffle_preserves_row_alignment() {
        let mut p = problem(vec![
            (8, false, vec![1, 2, 3, 4]),
            (8, false, vec![10, 20, 30, 40]),
        ]);
        let mut rng = Rng::seed_from_u64(3);
        shuffle_rows(&mut p, &mut rng);
        for r in 0..4 {
            assert_eq!(p.columns[1][r], p.columns[0][r] * 10);
        }
    }
}
