//! A minimal property-test harness.
//!
//! Replaces the `proptest` dependency (unavailable offline) with the
//! small subset the repo needs: run a closure over many seeded random
//! cases, and on failure print the exact seed so the case can be
//! replayed in isolation.
//!
//! Environment variables:
//!
//! * `PROPTEST_CASES` — override the number of cases per property
//!   (kept under the historical name so CI configs and muscle memory
//!   still work).
//! * `MCS_TEST_SEED` — run a *single* case with this seed (decimal or
//!   `0x…` hex), for replaying a reported failure.

use crate::rng::Rng;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Number of cases to run: `PROPTEST_CASES` if set, else `default`.
pub fn num_cases(default: u32) -> u32 {
    match std::env::var("PROPTEST_CASES") {
        Ok(v) => v
            .trim()
            .parse()
            .unwrap_or_else(|_| panic!("PROPTEST_CASES={v:?} is not a number")),
        Err(_) => default,
    }
}

fn parse_seed(v: &str) -> u64 {
    let t = v.trim();
    let parsed = match t.strip_prefix("0x").or_else(|| t.strip_prefix("0X")) {
        Some(hex) => u64::from_str_radix(hex, 16),
        None => t.parse(),
    };
    parsed.unwrap_or_else(|_| panic!("MCS_TEST_SEED={v:?} is not a u64"))
}

/// Run `property` over `default_cases` random cases (see [`num_cases`]).
///
/// Each case gets a fresh [`Rng`] from a per-case seed derived from the
/// property `name` and the case index, so adding cases to one property
/// never shifts another's inputs. On panic the failing seed is printed
/// and the panic is re-raised; replay with
/// `MCS_TEST_SEED=<seed> cargo test <name>`.
pub fn check(name: &str, default_cases: u32, property: impl Fn(&mut Rng)) {
    if let Ok(v) = std::env::var("MCS_TEST_SEED") {
        let seed = parse_seed(&v);
        eprintln!("[{name}] replaying single case, seed = {seed} (0x{seed:x})");
        let mut rng = Rng::seed_from_u64(seed);
        property(&mut rng);
        return;
    }
    let cases = num_cases(default_cases);
    // Stable per-property base stream; case seeds are its outputs.
    let mut seed_stream = Rng::stream(0x4D43_535F_5052_4F50, name); // "MCS_PROP"
    for case in 0..cases {
        let seed = seed_stream.next_u64();
        let result = catch_unwind(AssertUnwindSafe(|| {
            let mut rng = Rng::seed_from_u64(seed);
            property(&mut rng);
        }));
        if let Err(payload) = result {
            eprintln!(
                "[{name}] property failed at case {case}/{cases}, seed = {seed} (0x{seed:x})\n\
                 [{name}] replay with: MCS_TEST_SEED={seed} cargo test {name}"
            );
            std::panic::resume_unwind(payload);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runs_requested_cases() {
        let mut count = 0u32;
        let counter = std::cell::Cell::new(0u32);
        check("runs_requested_cases_inner", 17, |_rng| {
            counter.set(counter.get() + 1);
        });
        count += counter.get();
        // PROPTEST_CASES may be set in the environment; only assert we ran
        // a positive number, and exactly the default when it is not set.
        if std::env::var("PROPTEST_CASES").is_err() {
            assert_eq!(count, 17);
        } else {
            assert!(count > 0);
        }
    }

    #[test]
    fn failure_reports_seed() {
        let result = catch_unwind(AssertUnwindSafe(|| {
            check("always_fails_inner", 3, |_rng| panic!("boom"));
        }));
        assert!(result.is_err());
    }

    #[test]
    fn seeds_differ_across_cases() {
        let seeds = std::cell::RefCell::new(Vec::new());
        check("distinct_seed_probe", 8, |rng| {
            seeds.borrow_mut().push(rng.next_u64());
        });
        let v = seeds.borrow();
        let mut sorted = v.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), v.len(), "case seeds must be distinct");
    }
}
