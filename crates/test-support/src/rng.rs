//! A small, fast, seedable PRNG (xoshiro256++) with a `rand`-flavoured
//! API surface.
//!
//! The workspace builds in fully offline environments, so it cannot pull
//! the `rand` crate; this module provides the subset the repo actually
//! uses — `seed_from_u64`, `gen`, `gen_range`, `gen_bool` — with
//! deterministic, platform-independent output. Not cryptographic; test
//! and workload generation only.

/// SplitMix64 step — used for seeding and as a cheap stream splitter.
#[inline]
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// xoshiro256++ generator.
#[derive(Debug, Clone)]
pub struct Rng {
    s: [u64; 4],
}

impl Rng {
    /// Seed the full 256-bit state from one `u64` via SplitMix64
    /// (the standard xoshiro seeding recipe).
    pub fn seed_from_u64(seed: u64) -> Rng {
        let mut sm = seed;
        Rng {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }

    /// Next raw 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Sample a value of a supported primitive type (`u8`..`u64`,
    /// `usize`, `f64` in `[0, 1)`, `bool`).
    #[inline]
    pub fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Sample uniformly from a `Range` or `RangeInclusive` of an
    /// unsigned integer type. Panics on empty ranges, like `rand`.
    #[inline]
    pub fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: UniformInt,
        R: SampleRange<T>,
    {
        range.sample(self)
    }

    /// Bernoulli draw with probability `p`.
    #[inline]
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, v: &mut [T]) {
        for i in (1..v.len()).rev() {
            let j = self.gen_range(0..=i);
            v.swap(i, j);
        }
    }

    /// Uniformly pick one element of a non-empty slice.
    pub fn choose<'a, T>(&mut self, v: &'a [T]) -> &'a T {
        assert!(!v.is_empty(), "choose from empty slice");
        &v[self.gen_range(0..v.len())]
    }

    /// A derived generator for a named stream: deterministic, and
    /// distinct streams for distinct names (FNV-1a over the name mixed
    /// into the seed).
    pub fn stream(seed: u64, name: &str) -> Rng {
        let mut h = 0xCBF2_9CE4_8422_2325u64;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        Rng::seed_from_u64(seed ^ h)
    }
}

/// Types [`Rng::gen`] can produce.
pub trait Standard: Sized {
    /// Draw one value.
    fn sample(rng: &mut Rng) -> Self;
}

macro_rules! impl_standard_uint {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            #[inline]
            fn sample(rng: &mut Rng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_uint!(u8, u16, u32, u64, usize);

impl Standard for bool {
    #[inline]
    fn sample(rng: &mut Rng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    #[inline]
    fn sample(rng: &mut Rng) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Unsigned integer types `gen_range` understands.
pub trait UniformInt: Copy + PartialOrd {
    /// Widen to u64.
    fn to_u64(self) -> u64;
    /// Narrow from u64 (value is guaranteed in range).
    fn from_u64(v: u64) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl UniformInt for $t {
            #[inline]
            fn to_u64(self) -> u64 { self as u64 }
            #[inline]
            fn from_u64(v: u64) -> $t { v as $t }
        }
    )*};
}
impl_uniform_int!(u8, u16, u32, u64, usize);

/// Range arguments accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw one value from the range.
    fn sample(self, rng: &mut Rng) -> T;
}

/// Uniform draw from `[0, span)` via 128-bit widening multiply
/// (Lemire's method without the rejection step — bias is < 2^-64,
/// irrelevant for testing).
#[inline]
fn below(rng: &mut Rng, span: u64) -> u64 {
    ((rng.next_u64() as u128 * span as u128) >> 64) as u64
}

impl<T: UniformInt> SampleRange<T> for core::ops::Range<T> {
    #[inline]
    fn sample(self, rng: &mut Rng) -> T {
        let lo = self.start.to_u64();
        let hi = self.end.to_u64();
        assert!(lo < hi, "gen_range on empty range");
        T::from_u64(lo + below(rng, hi - lo))
    }
}

impl<T: UniformInt> SampleRange<T> for core::ops::RangeInclusive<T> {
    #[inline]
    fn sample(self, rng: &mut Rng) -> T {
        let lo = self.start().to_u64();
        let hi = self.end().to_u64();
        assert!(lo <= hi, "gen_range on empty range");
        let span = hi - lo;
        if span == u64::MAX {
            return T::from_u64(rng.next_u64());
        }
        T::from_u64(lo + below(rng, span + 1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_seed_sensitive() {
        let a: Vec<u64> = {
            let mut r = Rng::seed_from_u64(7);
            (0..8).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = Rng::seed_from_u64(7);
            (0..8).map(|_| r.next_u64()).collect()
        };
        let c: Vec<u64> = {
            let mut r = Rng::seed_from_u64(8);
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = Rng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v: u64 = r.gen_range(10..20u64);
            assert!((10..20).contains(&v));
            let w: usize = r.gen_range(0..=3usize);
            assert!(w <= 3);
            let f: f64 = r.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn range_covers_all_values() {
        let mut r = Rng::seed_from_u64(3);
        let mut seen = [false; 5];
        for _ in 0..1000 {
            seen[r.gen_range(0..5usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn streams_are_distinct() {
        let mut a = Rng::stream(42, "x");
        let mut b = Rng::stream(42, "y");
        let va: Vec<u64> = (0..4).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..4).map(|_| b.next_u64()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = Rng::seed_from_u64(9);
        let mut v: Vec<u32> = (0..100).collect();
        r.shuffle(&mut v);
        let mut s = v.clone();
        s.sort_unstable();
        assert_eq!(s, (0..100).collect::<Vec<u32>>());
    }

    #[test]
    fn gen_bool_respects_probability() {
        let mut r = Rng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "hits={hits}");
    }
}
