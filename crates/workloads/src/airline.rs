//! The "real data" workload: a synthetic stand-in for the Airline Origin
//! and Destination Survey (DB1B) dataset the paper evaluates on
//! (its Table 4 schema and Table 5 queries).
//!
//! The original 4 GB CSV release is not redistributable/downloadable in
//! this environment; we generate the two relations with realistic
//! cardinalities (≈ 400 airports, 26 carriers, 52 states, 4 quarters,
//! 12 distance groups, fare-per-mile and market-fare distributions with a
//! long right tail). The five queries exercise exactly the clause shapes
//! of Table 5: ORDER BY, GROUP BY ×4, and two RANK() windows.

use mcs_columnar::{Column, Predicate, Table};
use mcs_engine::{Agg, AggKind, Filter, OrderKey, Query};

use crate::gen::{gen_codes, stream, Distribution};
use crate::suite::{BenchQuery, QuerySpec, Workload};

/// Generation parameters.
#[derive(Debug, Clone)]
pub struct AirlineParams {
    /// Ticket rows (the survey's itinerary grain).
    pub ticket_rows: usize,
    /// Market rows.
    pub market_rows: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for AirlineParams {
    fn default() -> Self {
        AirlineParams {
            ticket_rows: 1 << 20,
            market_rows: 1 << 20,
            seed: 0xA1,
        }
    }
}

const AIRPORTS: u64 = 400;
const CARRIERS: u64 = 26;
const STATES: u64 = 52;

/// Build the airline workload (Ticket + Market relations, 5 queries).
pub fn airline(params: &AirlineParams) -> Workload {
    let seed = params.seed;
    // Busy airports dominate: mild Zipf on airports/carriers mirrors the
    // real survey's concentration.
    let skewed = Distribution::Zipf(0.6);
    let u = Distribution::Uniform;

    let mut ticket = Table::new("ticket");
    {
        let n = params.ticket_rows.max(64);
        let mut rng = stream(seed, "ticket");
        ticket.add_column(Column::from_u64s(
            "Year",
            3,
            gen_codes(&mut rng, n, 5, 5, &u),
        ));
        ticket.add_column(Column::from_u64s(
            "Quarter",
            2,
            gen_codes(&mut rng, n, 4, 4, &u),
        ));
        ticket.add_column(Column::from_u64s(
            "OriginAirportID",
            9,
            gen_codes(&mut rng, n, AIRPORTS, AIRPORTS, &skewed),
        ));
        ticket.add_column(Column::from_u64s(
            "OriginStateName",
            6,
            gen_codes(&mut rng, n, STATES, STATES, &skewed),
        ));
        ticket.add_column(Column::from_u64s(
            "RoundTrip",
            1,
            gen_codes(&mut rng, n, 2, 2, &u),
        ));
        ticket.add_column(Column::from_u64s(
            "DollarCred",
            2,
            gen_codes(&mut rng, n, 4, 4, &u),
        ));
        // Fare per mile in tenths of cents, long right tail.
        ticket.add_column(Column::from_u64s(
            "FarePerMile",
            17,
            (0..n).map(|_| {
                let x: f64 = rng.gen::<f64>();
                ((x * x * 130_000.0) as u64).min((1 << 17) - 1)
            }),
        ));
        ticket.add_column(Column::from_u64s(
            "RPCarrier",
            5,
            gen_codes(&mut rng, n, CARRIERS, CARRIERS, &skewed),
        ));
        ticket.add_column(Column::from_u64s(
            "Passengers",
            4,
            gen_codes(&mut rng, n, 10, 10, &skewed),
        ));
        let distance = gen_codes(&mut rng, n, 6000, 3000, &u);
        let dgroup: Vec<u64> = distance.iter().map(|&d| (d / 500).min(11)).collect();
        ticket.add_column(Column::from_u64s("Distance", 13, distance));
        ticket.add_column(Column::from_u64s("DistanceGroup", 4, dgroup));
        ticket.add_column(Column::from_u64s(
            "ItinGeoType",
            2,
            gen_codes(&mut rng, n, 3, 3, &u),
        ));
    }

    let mut market = Table::new("market");
    {
        let n = params.market_rows.max(64);
        let mut rng = stream(seed, "market");
        market.add_column(Column::from_u64s(
            "Year",
            3,
            gen_codes(&mut rng, n, 5, 5, &u),
        ));
        market.add_column(Column::from_u64s(
            "Quarter",
            2,
            gen_codes(&mut rng, n, 4, 4, &u),
        ));
        market.add_column(Column::from_u64s(
            "OriginAirportID",
            9,
            gen_codes(&mut rng, n, AIRPORTS, AIRPORTS, &skewed),
        ));
        market.add_column(Column::from_u64s(
            "DestAirportID",
            9,
            gen_codes(&mut rng, n, AIRPORTS, AIRPORTS, &skewed),
        ));
        market.add_column(Column::from_u64s(
            "OpCarrier",
            5,
            gen_codes(&mut rng, n, CARRIERS, CARRIERS, &skewed),
        ));
        market.add_column(Column::from_u64s(
            "Passengers",
            4,
            gen_codes(&mut rng, n, 10, 10, &skewed),
        ));
        market.add_column(Column::from_u64s(
            "MktFare",
            17,
            (0..n).map(|_| {
                let x: f64 = rng.gen::<f64>();
                ((x * x * 130_000.0) as u64).min((1 << 17) - 1)
            }),
        ));
        let dist = gen_codes(&mut rng, n, 6000, 3000, &u);
        let dgroup: Vec<u64> = dist.iter().map(|&d| (d / 500).min(11)).collect();
        market.add_column(Column::from_u64s("MktDistance", 13, dist));
        market.add_column(Column::from_u64s("MktDistanceGroup", 4, dgroup));
        market.add_column(Column::from_u64s(
            "ItinGeoType",
            2,
            gen_codes(&mut rng, n, 3, 3, &u),
        ));
    }

    let queries = queries();
    Workload {
        name: "airline".into(),
        tables: vec![ticket, market],
        queries,
    }
}

fn queries() -> Vec<BenchQuery> {
    let mut out = Vec::new();
    let texas = 43u64; // dictionary code for 'Texas' in our 52-state domain

    // Q1: credibility vs fare per mile in one state (ORDER BY 2 attrs).
    {
        let mut q = Query::named("air_q1");
        q.filters = vec![Filter {
            column: "OriginStateName".into(),
            predicate: Predicate::Eq(texas),
        }];
        q.select = vec![
            "OriginAirportID".into(),
            "DollarCred".into(),
            "FarePerMile".into(),
        ];
        q.order_by = vec![OrderKey::asc("DollarCred"), OrderKey::asc("FarePerMile")];
        out.push(BenchQuery {
            name: "air_q1".into(),
            table: "ticket".into(),
            spec: QuerySpec::Single(q),
        });
    }

    // Q2: RANK() OVER (PARTITION BY airport, distance group ORDER BY
    // passengers) for non-contiguous domestic itineraries.
    {
        let mut q = Query::named("air_q2");
        q.filters = vec![Filter {
            column: "ItinGeoType".into(),
            predicate: Predicate::Eq(1),
        }];
        q.select = vec![
            "OriginAirportID".into(),
            "DistanceGroup".into(),
            "Passengers".into(),
        ];
        q.partition_by = vec!["OriginAirportID".into(), "DistanceGroup".into()];
        q.window_order = vec![OrderKey::asc("Passengers")];
        out.push(BenchQuery {
            name: "air_q2".into(),
            table: "ticket".into(),
            spec: QuerySpec::Single(q),
        });
    }

    // Q3: average passengers per carrier/state/trip-type/distance group
    // (GROUP BY 4 attributes).
    {
        let mut q = Query::named("air_q3");
        q.group_by = vec![
            "RPCarrier".into(),
            "OriginStateName".into(),
            "RoundTrip".into(),
            "DistanceGroup".into(),
        ];
        q.aggregates = vec![Agg::new(AggKind::Avg("Passengers".into()), "avg_pax")];
        out.push(BenchQuery {
            name: "air_q3".into(),
            table: "ticket".into(),
            spec: QuerySpec::Single(q),
        });
    }

    // Q4: average fare per airport pair for carrier 'B6'.
    {
        let mut q = Query::named("air_q4");
        q.filters = vec![Filter {
            column: "OpCarrier".into(),
            predicate: Predicate::Eq(1), // 'B6' is the 2nd carrier code
        }];
        q.group_by = vec!["OriginAirportID".into(), "DestAirportID".into()];
        q.aggregates = vec![Agg::new(AggKind::Avg("MktFare".into()), "avg_fare")];
        out.push(BenchQuery {
            name: "air_q4".into(),
            table: "market".into(),
            spec: QuerySpec::Single(q),
        });
    }

    // Q5: RANK() OVER (PARTITION BY carrier, geo type ORDER BY fare) for
    // short-haul markets.
    {
        let mut q = Query::named("air_q5");
        q.filters = vec![Filter {
            column: "MktDistanceGroup".into(),
            predicate: Predicate::Eq(1),
        }];
        q.select = vec!["OpCarrier".into(), "MktFare".into()];
        q.partition_by = vec!["OpCarrier".into(), "ItinGeoType".into()];
        q.window_order = vec![OrderKey::asc("MktFare")];
        out.push(BenchQuery {
            name: "air_q5".into(),
            table: "market".into(),
            spec: QuerySpec::Single(q),
        });
    }

    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::suite::{run_bench_query, run_bench_query_naive};
    use mcs_engine::reference::assert_same_rows;
    use mcs_engine::EngineConfig;

    #[test]
    fn schema_matches_table4_shapes() {
        let w = airline(&AirlineParams {
            ticket_rows: 2000,
            market_rows: 2000,
            seed: 5,
        });
        let t = w.table("ticket");
        assert!(t.expect_column("OriginAirportID").stats().ndv <= 400);
        assert!(t.expect_column("RPCarrier").stats().ndv <= 26);
        assert_eq!(t.expect_column("FarePerMile").width(), 17);
        assert_eq!(w.queries.len(), 5);
        // Distance group derived consistently.
        let d = t.expect_column("Distance");
        let g = t.expect_column("DistanceGroup");
        for r in 0..100 {
            assert_eq!(g.get(r), (d.get(r) / 500).min(11));
        }
    }

    #[test]
    fn all_queries_match_reference_small() {
        let w = airline(&AirlineParams {
            ticket_rows: 2500,
            market_rows: 2500,
            seed: 6,
        });
        for cfg in [EngineConfig::default(), EngineConfig::without_massaging()] {
            for bq in &w.queries {
                let (got, _) = run_bench_query(&w, bq, &cfg);
                let want = run_bench_query_naive(&w, bq);
                assert_same_rows(&got.columns, &want);
            }
        }
    }
}
