//! Data-generation primitives: deterministic RNG streams, Zipf sampling
//! (for TPC-H *skew* à la Chaudhuri–Narasayya), and code-column helpers.

use mcs_test_support::Rng;

/// A Zipf(θ) sampler over ranks `1..=n` (returned 0-based), using a
/// precomputed CDF + binary search. θ = 1 reproduces the paper's
/// `zipf = 1` TPC-H skew setting; θ = 0 degenerates to uniform.
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Build a sampler over `n` ranks with exponent `theta`.
    pub fn new(n: usize, theta: f64) -> Zipf {
        assert!(n >= 1);
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0f64;
        for i in 1..=n {
            acc += 1.0 / (i as f64).powf(theta);
            cdf.push(acc);
        }
        let total = acc;
        for c in cdf.iter_mut() {
            *c /= total;
        }
        Zipf { cdf }
    }

    /// Draw one 0-based rank.
    pub fn sample(&self, rng: &mut Rng) -> usize {
        let u: f64 = rng.gen();
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }
}

/// How values of a generated column are distributed.
#[derive(Debug, Clone)]
pub enum Distribution {
    /// Uniform over the domain.
    Uniform,
    /// Zipf(θ) over the domain's distinct values (rank 0 most frequent).
    Zipf(f64),
}

/// Generate `n` codes over `[0, domain)` with at most `ndv` distinct
/// values, under `dist`. With `ndv < domain`, the distinct values are
/// spread evenly over the domain (matching the paper's §3 micro setup:
/// "2^13 distinct values uniformly distributed on a [0, 2^w − 1]
/// domain").
pub fn gen_codes(rng: &mut Rng, n: usize, domain: u64, ndv: u64, dist: &Distribution) -> Vec<u64> {
    assert!(domain >= 1);
    let ndv = ndv.clamp(1, domain);
    let stride = domain / ndv;
    let value_of = |rank: u64| -> u64 { (rank * stride).min(domain - 1) };
    match dist {
        Distribution::Uniform => (0..n).map(|_| value_of(rng.gen_range(0..ndv))).collect(),
        Distribution::Zipf(theta) => {
            let z = Zipf::new(ndv as usize, *theta);
            // Shuffle the rank->value mapping so the hot values are not
            // simply the smallest codes.
            let mut perm: Vec<u64> = (0..ndv).collect();
            for i in (1..perm.len()).rev() {
                let j = rng.gen_range(0..=i);
                perm.swap(i, j);
            }
            (0..n).map(|_| value_of(perm[z.sample(rng)])).collect()
        }
    }
}

/// A seeded RNG for a named stream (generation is reproducible and
/// per-column independent).
pub fn stream(seed: u64, name: &str) -> Rng {
    let mut h = 1469598103934665603u64;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(1099511628211);
    }
    Rng::seed_from_u64(seed ^ h)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zipf_is_skewed() {
        let z = Zipf::new(1000, 1.0);
        let mut rng = stream(1, "zipf");
        let mut counts = vec![0usize; 1000];
        for _ in 0..100_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        // Rank 0 should be far more frequent than rank 100.
        assert!(counts[0] > 5 * counts[100].max(1));
        // All samples in range (no panic) and roughly harmonic mass at top.
        let top10: usize = counts[..10].iter().sum();
        assert!(top10 as f64 > 0.25 * 100_000.0);
    }

    #[test]
    fn zipf_theta_zero_is_uniform() {
        let z = Zipf::new(100, 0.0);
        let mut rng = stream(2, "u");
        let mut counts = vec![0usize; 100];
        for _ in 0..100_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        assert!(counts.iter().all(|&c| c > 500 && c < 1500));
    }

    #[test]
    fn gen_codes_respects_domain_and_ndv() {
        let mut rng = stream(3, "g");
        let codes = gen_codes(&mut rng, 10_000, 1 << 20, 1 << 6, &Distribution::Uniform);
        assert!(codes.iter().all(|&c| c < (1 << 20)));
        let mut d = codes.clone();
        d.sort_unstable();
        d.dedup();
        assert!(d.len() <= 64);
        assert!(d.len() > 32, "too few distinct values hit: {}", d.len());
    }

    #[test]
    fn streams_are_deterministic_and_distinct() {
        let a: Vec<u64> = {
            let mut r = stream(42, "x");
            (0..5).map(|_| r.gen()).collect()
        };
        let b: Vec<u64> = {
            let mut r = stream(42, "x");
            (0..5).map(|_| r.gen()).collect()
        };
        let c: Vec<u64> = {
            let mut r = stream(42, "y");
            (0..5).map(|_| r.gen()).collect()
        };
        assert_eq!(a, b);
        assert_ne!(a, c);
    }
}
