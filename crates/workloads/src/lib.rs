//! # mcs-workloads
//!
//! Workload generators and query definitions for the SIGMOD'16 *Fast
//! Multi-Column Sorting* evaluation (§6):
//!
//! * [`micro`] — the §3 Examples Ex1–Ex4 (Figures 3, 4);
//! * [`mod@tpch`] — mini TPC-H and TPC-H *skew* (Zipf-1) WideTables with the
//!   nine multi-column-sorting queries (Q1, Q2, Q3, Q7, Q9, Q10, Q13,
//!   Q16, Q18);
//! * [`mod@tpcds`] — a TPC-DS store_sales WideTable with the four
//!   PARTITION BY queries (Q67 and three analogs);
//! * [`mod@airline`] — a synthetic stand-in for the DB1B Airline Origin &
//!   Destination Survey (Table 4 schema, Table 5's five queries);
//! * [`suite`] — the multi-stage query runner used by all benchmarks.
//!
//! Substitutions vs. the paper's data sources are listed in DESIGN.md.

#![warn(missing_docs)]

pub mod airline;
pub mod gen;
pub mod micro;
pub mod suite;
pub mod tpcds;
pub mod tpch;

pub use airline::{airline, AirlineParams};
pub use micro::{ex1, ex2, ex3, ex4, MicroInstance};
pub use suite::{
    run_bench_query, run_bench_query_naive, BenchQuery, CombinedTimings, QuerySpec, Workload,
};
pub use tpcds::{tpcds, TpcdsParams};
pub use tpch::{tpch, TpchParams};
