//! The §3 micro-benchmark instances: Examples Ex1–Ex4 (Figures 3 and 4).
//!
//! Each generates `N` tuples per column with `min(2^13, 2^w)` distinct
//! values uniformly distributed over `[0, 2^w)` — the paper's setup —
//! and names the plans the figures compare.

use mcs_columnar::CodeVec;
use mcs_core::{MassagePlan, SortSpec};
use mcs_cost::{KeyColumnStats, SortInstance};

use crate::gen::{gen_codes, stream, Distribution};

/// A micro multi-column-sorting instance.
#[derive(Debug)]
pub struct MicroInstance {
    /// Identifier (`ex1` … `ex4`).
    pub name: String,
    /// The generated sort columns.
    pub columns: Vec<CodeVec>,
    /// Specs (all ascending).
    pub specs: Vec<SortSpec>,
    /// Named plans the paper's figure compares, in figure order.
    pub plans: Vec<(String, MassagePlan)>,
}

impl MicroInstance {
    /// Column references, for `multi_column_sort`.
    pub fn column_refs(&self) -> Vec<&CodeVec> {
        self.columns.iter().collect()
    }

    /// The optimizer's view of this instance.
    pub fn instance(&self) -> SortInstance {
        SortInstance {
            rows: self.columns[0].len(),
            specs: self.specs.clone(),
            stats: self
                .specs
                .iter()
                .map(|s| KeyColumnStats::uniform(s.width, 2f64.powi(s.width.min(13) as i32)))
                .collect(),
            want_final_groups: true,
        }
    }
}

/// NDV rule from the paper: `2^13`, or `2^w` when `w < 13`.
pub fn paper_ndv(width: u32) -> u64 {
    1u64 << width.min(13)
}

fn build(name: &str, rows: usize, widths: &[u32], seed: u64) -> (Vec<CodeVec>, Vec<SortSpec>) {
    let mut cols = Vec::new();
    let mut specs = Vec::new();
    for (i, &w) in widths.iter().enumerate() {
        let mut rng = stream(seed, &format!("{name}-{i}"));
        let domain = if w >= 64 { u64::MAX } else { 1u64 << w };
        let vals = gen_codes(&mut rng, rows, domain, paper_ndv(w), &Distribution::Uniform);
        cols.push(CodeVec::from_u64s(w, vals));
        specs.push(SortSpec::asc(w));
    }
    (cols, specs)
}

/// Ex1 (Figure 3a): 10-bit + 17-bit; `P_0` vs the `P_≪17` stitch.
pub fn ex1(rows: usize, seed: u64) -> MicroInstance {
    let (columns, specs) = build("ex1", rows, &[10, 17], seed);
    MicroInstance {
        name: "ex1".into(),
        columns,
        specs,
        plans: vec![
            ("P0".into(), MassagePlan::from_widths(&[10, 17])),
            ("P<<17".into(), MassagePlan::from_widths(&[27])),
        ],
    }
}

/// Ex2 (Figure 3b): 15-bit + 31-bit; the reckless `P_≪31` stitch loses.
pub fn ex2(rows: usize, seed: u64) -> MicroInstance {
    let (columns, specs) = build("ex2", rows, &[15, 31], seed);
    MicroInstance {
        name: "ex2".into(),
        columns,
        specs,
        plans: vec![
            ("P0".into(), MassagePlan::from_widths(&[15, 31])),
            ("P<<31".into(), MassagePlan::from_widths(&[46])),
        ],
    }
}

/// Ex3 (Figure 4a): 17-bit + 33-bit; the full shift family
/// `P_≪33 … P_≫17` (every boundary position of the 50-bit key).
pub fn ex3(rows: usize, seed: u64) -> MicroInstance {
    let (columns, specs) = build("ex3", rows, &[17, 33], seed);
    let mut plans = Vec::new();
    // Left-shift family: k bits move from column 2 into round 1.
    for k in (1..=33u32).rev() {
        let w1 = 17 + k;
        let name = if k == 33 {
            "P<<33 (stitch)".to_string()
        } else {
            format!("P<<{k}")
        };
        if w1 >= 50 {
            plans.push((name, MassagePlan::from_widths(&[50])));
        } else {
            plans.push((name, MassagePlan::from_widths(&[w1, 50 - w1])));
        }
    }
    plans.push(("P0".into(), MassagePlan::from_widths(&[17, 33])));
    // Right-shift family: k bits move from column 1 into round 2.
    for k in 1..=17u32 {
        let w1 = 17 - k;
        let name = if k == 17 {
            "P>>17 (stitch)".to_string()
        } else {
            format!("P>>{k}")
        };
        if w1 == 0 {
            plans.push((name, MassagePlan::from_widths(&[50])));
        } else {
            plans.push((name, MassagePlan::from_widths(&[w1, 50 - w1])));
        }
    }
    MicroInstance {
        name: "ex3".into(),
        columns,
        specs,
        plans,
    }
}

/// Ex4 (Figure 3c): two 48-bit columns; `P_0` (two 64-bank rounds) vs
/// `P_32×3` (three 32-bank rounds).
pub fn ex4(rows: usize, seed: u64) -> MicroInstance {
    let (columns, specs) = build("ex4", rows, &[48, 48], seed);
    MicroInstance {
        name: "ex4".into(),
        columns,
        specs,
        plans: vec![
            ("P0".into(), MassagePlan::from_widths(&[48, 48])),
            ("P32x3".into(), MassagePlan::from_widths(&[32, 32, 32])),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcs_core::{multi_column_sort, verify_sorted, ExecConfig};

    #[test]
    fn paper_ndv_rule() {
        assert_eq!(paper_ndv(10), 1024);
        assert_eq!(paper_ndv(13), 8192);
        assert_eq!(paper_ndv(17), 8192);
        assert_eq!(paper_ndv(64), 8192);
    }

    #[test]
    fn ex3_has_50_plans() {
        // 33 left shifts + P0 + 17 right shifts = 51 named plans; the two
        // stitch extremes denote the same single-round plan.
        let m = ex3(256, 1);
        assert_eq!(m.plans.len(), 51);
        assert_eq!(
            m.plans.first().unwrap().1,
            m.plans.last().unwrap().1,
            "P<<33 and P>>17 are the same stitch-all plan"
        );
        for (_, p) in &m.plans {
            assert!(p.validate(50).is_ok());
        }
    }

    #[test]
    fn all_examples_sort_correctly_under_all_plans() {
        for m in [ex1(500, 2), ex2(500, 3), ex4(500, 4)] {
            let refs = m.column_refs();
            for (name, plan) in &m.plans {
                let out = multi_column_sort(&refs, &m.specs, plan, &ExecConfig::default())
                    .expect("valid sort instance");
                verify_sorted(&refs, &m.specs, &out, true);
                let _ = name;
            }
        }
    }

    #[test]
    fn instance_stats_follow_ndv_rule() {
        let m = ex1(100, 5);
        let inst = m.instance();
        assert_eq!(inst.stats[0].ndv, 1024.0);
        assert_eq!(inst.stats[1].ndv, 8192.0);
    }
}
