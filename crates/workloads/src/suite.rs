//! Benchmark-suite plumbing: workloads are bags of tables plus named
//! (possibly multi-stage) queries; the runner executes a query's stages
//! and combines their timings.

use mcs_columnar::Table;
use mcs_engine::{result_to_table, run_query, EngineConfig, Query, QueryResult, QueryTimings};

/// A benchmark query: one or two engine stages.
#[derive(Debug, Clone)]
pub enum QuerySpec {
    /// A single pipeline invocation.
    Single(Query),
    /// The first stage's result table feeds the second stage (TPC-H Q13's
    /// two-level aggregation, TPC-DS rank-over-grouped-result queries).
    TwoStage {
        /// Stage 1 (runs on the workload table).
        first: Query,
        /// Stage 2 (runs on stage 1's materialized result).
        second: Query,
    },
}

impl QuerySpec {
    /// The number of sort attributes of the *dominant* multi-column sort
    /// (the widest stage).
    pub fn sort_width(&self) -> usize {
        match self {
            QuerySpec::Single(q) => q.sort_width(),
            QuerySpec::TwoStage { first, second } => first.sort_width().max(second.sort_width()),
        }
    }

    /// The widest multi-column sort any stage triggers anywhere in its
    /// pipeline, including post-aggregation ORDER BY re-sorts (see
    /// [`Query::max_sort_width`]).
    pub fn max_sort_width(&self) -> usize {
        match self {
            QuerySpec::Single(q) => q.max_sort_width(),
            QuerySpec::TwoStage { first, second } => {
                first.max_sort_width().max(second.max_sort_width())
            }
        }
    }
}

/// A named benchmark query bound to a workload table.
#[derive(Debug, Clone)]
pub struct BenchQuery {
    /// Identifier, e.g. `"tpch_q18"`.
    pub name: String,
    /// Which workload table the (first) stage scans.
    pub table: String,
    /// The stage(s).
    pub spec: QuerySpec,
}

/// A generated workload: tables plus its benchmark queries.
#[derive(Debug)]
pub struct Workload {
    /// Workload name (`tpch`, `tpch_skew`, `tpcds`, `airline`).
    pub name: String,
    /// Tables by name.
    pub tables: Vec<Table>,
    /// The benchmark queries.
    pub queries: Vec<BenchQuery>,
}

impl Workload {
    /// Find a table.
    pub fn table(&self, name: &str) -> &Table {
        self.tables
            .iter()
            .find(|t| t.name() == name)
            .unwrap_or_else(|| panic!("workload {} has no table {name}", self.name))
    }

    /// Find a query.
    pub fn query(&self, name: &str) -> &BenchQuery {
        self.queries
            .iter()
            .find(|q| q.name == name)
            .unwrap_or_else(|| panic!("workload {} has no query {name}", self.name))
    }
}

/// Combined timings over a query's stages.
#[derive(Debug, Clone, Default)]
pub struct CombinedTimings {
    /// Multi-column sorting time (both stages, incl. post-sorts).
    pub mcs_ns: u64,
    /// Plan-search time.
    pub plan_search_ns: u64,
    /// Everything else (scan, lookup, aggregation, materialization).
    pub rest_ns: u64,
    /// End-to-end.
    pub total_ns: u64,
    /// Per-stage raw timings.
    pub stages: Vec<QueryTimings>,
}

impl CombinedTimings {
    /// Accumulate one stage. Only *multi-column* sorting counts toward
    /// `mcs_ns` (the paper's quantity): a stage whose primary sort has a
    /// single attribute (e.g. TPC-H Q13's first-stage GROUP BY
    /// `o_custkey`) contributes it to `rest_ns` instead, and likewise a
    /// single-key ORDER BY post-sort.
    fn add(&mut self, q: &Query, t: &QueryTimings) {
        let primary_is_multi = q.sort_keys().len() >= 2;
        let post_is_multi = q.order_by.len() >= 2;
        if primary_is_multi {
            self.mcs_ns += t.mcs_ns;
        }
        if post_is_multi {
            self.mcs_ns += t.post_sort_ns;
        }
        self.plan_search_ns += t.plan_search_ns;
        self.total_ns += t.total_ns;
        self.rest_ns = self
            .total_ns
            .saturating_sub(self.mcs_ns + self.plan_search_ns);
        self.stages.push(t.clone());
    }
}

/// Execute a benchmark query (all stages) and combine timings.
pub fn run_bench_query(
    workload: &Workload,
    bq: &BenchQuery,
    cfg: &EngineConfig,
) -> (QueryResult, CombinedTimings) {
    let table = workload.table(&bq.table);
    let mut combined = CombinedTimings::default();
    // Bench queries are known-well-formed; a typed error here is a bug
    // in the workload definition, so fail loudly.
    let run = |table: &mcs_columnar::Table, q: &mcs_engine::Query| -> QueryResult {
        run_query(table, q, cfg).unwrap_or_else(|e| panic!("bench query {} failed: {e}", q.name))
    };
    match &bq.spec {
        QuerySpec::Single(q) => {
            let r = run(table, q);
            combined.add(q, &r.timings);
            (r, combined)
        }
        QuerySpec::TwoStage { first, second } => {
            let r1 = run(table, first);
            combined.add(first, &r1.timings);
            let t = std::time::Instant::now();
            let mid = result_to_table("stage1", &r1);
            let materialize_ns = t.elapsed().as_nanos() as u64;
            combined.total_ns += materialize_ns;
            combined.rest_ns += materialize_ns;
            let r2 = run(&mid, second);
            combined.add(second, &r2.timings);
            (r2, combined)
        }
    }
}

/// The raw multi-column-sorting *instance* a bench query's first stage
/// triggers: filtered-and-gathered sort-key columns, specs, and the
/// optimizer's [`mcs_cost::SortInstance`]. Used by the plan-quality
/// experiments (Table 1, Figure 7) that need to execute many plans on
/// exactly the data the query would sort.
pub fn extract_sort_instance(
    workload: &Workload,
    bq: &BenchQuery,
) -> (
    Vec<mcs_columnar::CodeVec>,
    Vec<mcs_core::SortSpec>,
    mcs_cost::SortInstance,
) {
    let table = workload.table(&bq.table);
    let q = match &bq.spec {
        QuerySpec::Single(q) => q,
        QuerySpec::TwoStage { first, .. } => first,
    };
    // Filters.
    let oids: Vec<u32> = if q.filters.is_empty() {
        (0..table.rows() as u32).collect()
    } else {
        let mut acc: Option<mcs_columnar::BitVec> = None;
        for f in &q.filters {
            let bv = table
                .expect_column(&f.column)
                .byteslice()
                .scan(&f.predicate);
            acc = Some(match acc {
                None => bv,
                Some(mut a) => {
                    a.and_assign(&bv);
                    a
                }
            });
        }
        acc.unwrap().to_oids()
    };
    let keys = q.sort_keys();
    let mut cols = Vec::new();
    let mut specs = Vec::new();
    let mut stats = Vec::new();
    for k in &keys {
        let col = table.expect_column(&k.column);
        cols.push(col.gather(&oids));
        specs.push(mcs_core::SortSpec {
            width: col.width(),
            descending: k.descending,
        });
        let mut s = mcs_cost::KeyColumnStats::from_stats(col.width(), col.stats());
        s.ndv = s.ndv.min(oids.len() as f64).max(1.0);
        stats.push(s);
    }
    let inst = mcs_cost::SortInstance {
        rows: oids.len(),
        specs: specs.clone(),
        stats,
        want_final_groups: true,
    };
    (cols, specs, inst)
}

/// Reference (naive) evaluation of a bench query, for correctness tests.
pub fn run_bench_query_naive(workload: &Workload, bq: &BenchQuery) -> Vec<(String, Vec<u64>)> {
    use mcs_engine::reference::naive_execute;
    let table = workload.table(&bq.table);
    match &bq.spec {
        QuerySpec::Single(q) => naive_execute(table, q),
        QuerySpec::TwoStage { first, second } => {
            let r1 = naive_execute(table, first);
            let mut t = Table::new("stage1");
            for (name, vals) in &r1 {
                let width = mcs_columnar::width_for_max(vals.iter().copied().max().unwrap_or(0));
                t.add_column(mcs_columnar::Column::from_u64s(
                    name.clone(),
                    width,
                    vals.iter().copied(),
                ));
            }
            naive_execute(&t, second)
        }
    }
}
