//! Mini TPC-DS: a store_sales-grain WideTable plus the four PARTITION BY
//! benchmark queries the paper selects (Q67 named explicitly; three more
//! window-over-grouped-result analogs labelled after common TPC-DS
//! windowed queries). Substitutions are documented in DESIGN.md — the
//! grouped/partitioned attribute counts, widths and cardinalities match
//! the spec's item/date/store hierarchy, which is what multi-column
//! sorting cost depends on.

use mcs_columnar::{widen, width_for_max, Column, DimensionJoin, Predicate, Table};
use mcs_engine::{Agg, AggKind, Filter, OrderKey, Query};

use crate::gen::{gen_codes, stream, Distribution};
use crate::suite::{BenchQuery, QuerySpec, Workload};

/// Generation parameters.
#[derive(Debug, Clone)]
pub struct TpcdsParams {
    /// store_sales rows (SF=1 would be ~2.9 M).
    pub store_sales_rows: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for TpcdsParams {
    fn default() -> Self {
        TpcdsParams {
            store_sales_rows: 1 << 20,
            seed: 0xD5,
        }
    }
}

/// Build the TPC-DS workload.
pub fn tpcds(params: &TpcdsParams) -> Workload {
    let n = params.store_sales_rows.max(64);
    let seed = params.seed;
    let u = Distribution::Uniform;

    // item dimension: hierarchy category(10) > class(100) > brand(1000).
    let items = (n / 30).max(32);
    let i_key_bits = width_for_max(items as u64 - 1);
    let mut item = Table::new("item");
    {
        let mut rng = stream(seed, "item");
        let category = gen_codes(&mut rng, items, 10, 10, &u);
        // class correlated with category (10 classes per category).
        let class: Vec<u64> = category
            .iter()
            .map(|&c| c * 10 + gen_codes(&mut rng, 1, 10, 10, &u)[0])
            .collect();
        let brand: Vec<u64> = class
            .iter()
            .map(|&c| c * 10 + gen_codes(&mut rng, 1, 10, 10, &u)[0])
            .collect();
        item.add_column(Column::from_u64s("i_category", 4, category));
        item.add_column(Column::from_u64s("i_class", 7, class));
        item.add_column(Column::from_u64s("i_brand", 10, brand));
        item.add_column(Column::from_u64s(
            "i_product_name",
            i_key_bits,
            (0..items).map(|i| i as u64),
        ));
    }

    // date dimension: 5 years x 4 quarters x 12 months.
    let dates = 1826usize;
    let mut date_dim = Table::new("date_dim");
    {
        date_dim.add_column(Column::from_u64s(
            "d_year",
            3,
            (0..dates).map(|i| (i / 365) as u64),
        ));
        date_dim.add_column(Column::from_u64s(
            "d_moy",
            4,
            (0..dates).map(|i| ((i % 365) / 31).min(11) as u64),
        ));
        date_dim.add_column(Column::from_u64s(
            "d_qoy",
            2,
            (0..dates).map(|i| (((i % 365) / 31).min(11) / 3) as u64),
        ));
    }

    // store dimension.
    let stores = 24usize;
    let mut store = Table::new("store");
    store.add_column(Column::from_u64s(
        "s_store_id",
        5,
        (0..stores).map(|i| i as u64),
    ));

    // store_sales fact.
    let mut fact = Table::new("store_sales");
    {
        let mut rng = stream(seed, "store_sales");
        fact.add_column(Column::from_u64s(
            "ss_item_fk",
            i_key_bits,
            gen_codes(&mut rng, n, items as u64, items as u64, &u),
        ));
        fact.add_column(Column::from_u64s(
            "ss_date_fk",
            11,
            gen_codes(&mut rng, n, dates as u64, dates as u64, &u),
        ));
        fact.add_column(Column::from_u64s(
            "ss_store_fk",
            5,
            gen_codes(&mut rng, n, stores as u64, stores as u64, &u),
        ));
        fact.add_column(Column::from_u64s(
            "ss_sales_price",
            17,
            gen_codes(&mut rng, n, 1 << 17, 1 << 17, &u),
        ));
        fact.add_column(Column::from_u64s(
            "ss_quantity",
            7,
            gen_codes(&mut rng, n, 100, 100, &u),
        ));
        fact.add_column(Column::from_u64s(
            "ss_net_profit",
            18,
            gen_codes(&mut rng, n, 1 << 18, 1 << 18, &u),
        ));
    }

    let wide = widen(
        "tpcds_wide",
        &fact,
        &[
            DimensionJoin {
                fk_column: "ss_item_fk",
                dimension: &item,
                select: vec![
                    ("i_category", "i_category"),
                    ("i_class", "i_class"),
                    ("i_brand", "i_brand"),
                    ("i_product_name", "i_product_name"),
                ],
            },
            DimensionJoin {
                fk_column: "ss_date_fk",
                dimension: &date_dim,
                select: vec![("d_year", "d_year"), ("d_moy", "d_moy"), ("d_qoy", "d_qoy")],
            },
            DimensionJoin {
                fk_column: "ss_store_fk",
                dimension: &store,
                select: vec![("s_store_id", "s_store_id")],
            },
        ],
    );

    let queries = queries();
    Workload {
        name: "tpcds".into(),
        tables: vec![wide],
        queries,
    }
}

fn queries() -> Vec<BenchQuery> {
    let mut out = Vec::new();

    // Q67: widest GROUP BY in the suite (8 attributes), then
    // RANK() OVER (PARTITION BY i_category ORDER BY sumsales DESC).
    {
        let mut first = Query::named("tpcds_q67a");
        first.filters = vec![Filter {
            column: "d_year".into(),
            predicate: Predicate::Between(1, 2),
        }];
        first.group_by = vec![
            "i_category".into(),
            "i_class".into(),
            "i_brand".into(),
            "i_product_name".into(),
            "d_year".into(),
            "d_qoy".into(),
            "d_moy".into(),
            "s_store_id".into(),
        ];
        first.aggregates = vec![Agg::new(AggKind::Sum("ss_sales_price".into()), "sumsales")];

        let mut second = Query::named("tpcds_q67b");
        second.select = vec!["i_category".into(), "i_brand".into(), "sumsales".into()];
        second.partition_by = vec!["i_category".into()];
        second.window_order = vec![OrderKey::desc("sumsales")];
        out.push(BenchQuery {
            name: "tpcds_q67".into(),
            table: "tpcds_wide".into(),
            spec: QuerySpec::TwoStage { first, second },
        });
    }

    // Q47-like: monthly brand/store sales, ranked within
    // (category, brand, store, year).
    {
        let mut first = Query::named("tpcds_q47a");
        first.group_by = vec![
            "i_category".into(),
            "i_brand".into(),
            "s_store_id".into(),
            "d_year".into(),
            "d_moy".into(),
        ];
        first.aggregates = vec![Agg::new(AggKind::Sum("ss_sales_price".into()), "sum_sales")];

        let mut second = Query::named("tpcds_q47b");
        second.select = vec![
            "i_category".into(),
            "i_brand".into(),
            "s_store_id".into(),
            "d_year".into(),
            "sum_sales".into(),
        ];
        second.partition_by = vec![
            "i_category".into(),
            "i_brand".into(),
            "s_store_id".into(),
            "d_year".into(),
        ];
        second.window_order = vec![OrderKey::desc("sum_sales")];
        out.push(BenchQuery {
            name: "tpcds_q47".into(),
            table: "tpcds_wide".into(),
            spec: QuerySpec::TwoStage { first, second },
        });
    }

    // Q86-like: profit by category/class, ranked within category.
    {
        let mut first = Query::named("tpcds_q86a");
        first.filters = vec![Filter {
            column: "d_moy".into(),
            predicate: Predicate::Le(5),
        }];
        first.group_by = vec!["i_category".into(), "i_class".into()];
        first.aggregates = vec![Agg::new(AggKind::Sum("ss_net_profit".into()), "total_sum")];

        let mut second = Query::named("tpcds_q86b");
        second.select = vec!["i_category".into(), "i_class".into(), "total_sum".into()];
        second.partition_by = vec!["i_category".into()];
        second.window_order = vec![OrderKey::desc("total_sum")];
        out.push(BenchQuery {
            name: "tpcds_q86".into(),
            table: "tpcds_wide".into(),
            spec: QuerySpec::TwoStage { first, second },
        });
    }

    // Q98-like: single-stage wide GROUP BY + multi-attribute ORDER BY.
    {
        let mut q = Query::named("tpcds_q98");
        q.filters = vec![Filter {
            column: "d_qoy".into(),
            predicate: Predicate::Eq(1),
        }];
        q.group_by = vec![
            "i_category".into(),
            "i_class".into(),
            "i_product_name".into(),
        ];
        q.aggregates = vec![Agg::new(
            AggKind::Sum("ss_sales_price".into()),
            "itemrevenue",
        )];
        q.order_by = vec![
            OrderKey::asc("i_category"),
            OrderKey::asc("i_class"),
            OrderKey::desc("itemrevenue"),
        ];
        out.push(BenchQuery {
            name: "tpcds_q98".into(),
            table: "tpcds_wide".into(),
            spec: QuerySpec::Single(q),
        });
    }

    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::suite::{run_bench_query, run_bench_query_naive};
    use mcs_engine::reference::assert_same_rows;
    use mcs_engine::EngineConfig;

    #[test]
    fn hierarchy_is_consistent() {
        let w = tpcds(&TpcdsParams {
            store_sales_rows: 3000,
            seed: 9,
        });
        let t = w.table("tpcds_wide");
        // class // 10 == category for every row (correlated hierarchy).
        let cat = t.expect_column("i_category");
        let class = t.expect_column("i_class");
        for r in 0..t.rows() {
            assert_eq!(class.get(r) / 10, cat.get(r));
        }
        assert_eq!(w.queries.len(), 4);
    }

    #[test]
    fn all_queries_match_reference_small() {
        let w = tpcds(&TpcdsParams {
            store_sales_rows: 2500,
            seed: 10,
        });
        for cfg in [EngineConfig::default(), EngineConfig::without_massaging()] {
            for bq in &w.queries {
                let (got, _) = run_bench_query(&w, bq, &cfg);
                let want = run_bench_query_naive(&w, bq);
                assert_same_rows(&got.columns, &want);
            }
        }
    }
}
