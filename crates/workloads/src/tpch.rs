//! Mini TPC-H: scaled-down generation of the columns the paper's nine
//! multi-column-sorting queries touch, pre-joined into WideTables
//! (Li & Patel) exactly as the paper's prototype stores them.
//!
//! Substitutions vs. full dbgen (documented in DESIGN.md): row counts are
//! a parameter instead of scale factors; string attributes are generated
//! directly in their encoded (order-preserving dictionary) domains;
//! `LIKE` predicates become equality/range predicates over encoded
//! domains; `HAVING` clauses are dropped. None of these affect the
//! multi-column-sorting behaviour under study — per-column widths,
//! cardinalities and distributions match the spec's.
//!
//! The *skew* variant applies Zipf(1) to attribute value choices,
//! following the Chaudhuri–Narasayya skewed TPC-D generator the paper
//! uses.

use mcs_columnar::{widen, width_for_max, Column, DimensionJoin, Predicate, Table};
use mcs_engine::{Agg, AggKind, Filter, OrderKey, Query};

use crate::gen::{gen_codes, stream, Distribution};
use crate::suite::{BenchQuery, QuerySpec, Workload};

/// Generation parameters.
#[derive(Debug, Clone)]
pub struct TpchParams {
    /// Lineitem rows (the fact table; SF=1 would be ~6 M).
    pub lineitem_rows: usize,
    /// Zipf θ for the skewed variant (`None` = uniform TPC-H).
    pub skew: Option<f64>,
    /// RNG seed.
    pub seed: u64,
}

impl Default for TpchParams {
    fn default() -> Self {
        TpchParams {
            lineitem_rows: 1 << 20,
            skew: None,
            seed: 0x7C9,
        }
    }
}

/// Derived table cardinalities (TPC-H SF ratios).
struct Card {
    lineitem: usize,
    orders: usize,
    customer: usize,
    part: usize,
    supplier: usize,
    partsupp: usize,
}

impl Card {
    fn of(rows: usize) -> Card {
        let lineitem = rows.max(64);
        Card {
            lineitem,
            orders: (lineitem / 4).max(16),
            customer: (lineitem / 40).max(8),
            part: (lineitem / 30).max(8),
            supplier: (lineitem / 600).max(4),
            partsupp: (lineitem / 30 * 4).max(16),
        }
    }
}

/// TPC-H date domain: 1992-01-01 .. 1998-12-31 = 2557 days -> 12 bits.
pub const DATE_DAYS: u64 = 2557;
/// Width of the date encoding.
pub const DATE_BITS: u32 = 12;

fn dist(p: &TpchParams) -> Distribution {
    match p.skew {
        Some(theta) => Distribution::Zipf(theta),
        None => Distribution::Uniform,
    }
}

/// Build the TPC-H (or TPC-H skew) workload: the lineitem-grain WideTable,
/// the partsupp-grain WideTable, the orders-grain table (for Q13), and
/// the nine benchmark queries.
pub fn tpch(params: &TpchParams) -> Workload {
    let c = Card::of(params.lineitem_rows);
    let d = dist(params);
    let seed = params.seed;

    // --- Dimension tables (row id = encoded key) ---------------------
    // nation: 25 rows; n_name code == row id (order-preserving), region 0..5.
    let mut nation = Table::new("nation");
    {
        let mut rng = stream(seed, "nation");
        nation.add_column(Column::from_u64s("n_name", 5, (0..25).map(|i| i as u64)));
        nation.add_column(Column::from_u64s(
            "n_region",
            3,
            (0..25).map(|_| rng.gen_range(0..5u64)),
        ));
    }

    // supplier.
    let s_key_bits = width_for_max(c.supplier as u64 - 1);
    let mut supplier = Table::new("supplier");
    {
        let mut rng = stream(seed, "supplier");
        supplier.add_column(Column::from_u64s(
            "s_name",
            s_key_bits,
            (0..c.supplier).map(|i| i as u64),
        ));
        supplier.add_column(Column::from_u64s(
            "s_nation",
            5,
            gen_codes(&mut rng, c.supplier, 25, 25, &d),
        ));
        supplier.add_column(Column::from_u64s(
            "s_acctbal",
            16,
            gen_codes(&mut rng, c.supplier, 1 << 16, 1 << 16, &d),
        ));
    }

    // part.
    let p_key_bits = width_for_max(c.part as u64 - 1);
    let mut part = Table::new("part");
    {
        let mut rng = stream(seed, "part");
        part.add_column(Column::from_u64s(
            "p_mfgr",
            3,
            gen_codes(&mut rng, c.part, 5, 5, &d),
        ));
        part.add_column(Column::from_u64s(
            "p_brand",
            5,
            gen_codes(&mut rng, c.part, 25, 25, &d),
        ));
        part.add_column(Column::from_u64s(
            "p_type",
            8,
            gen_codes(&mut rng, c.part, 150, 150, &d),
        ));
        part.add_column(Column::from_u64s(
            "p_size",
            6,
            gen_codes(&mut rng, c.part, 50, 50, &d),
        ));
        part.add_column(Column::from_u64s(
            "p_container",
            6,
            gen_codes(&mut rng, c.part, 40, 40, &d),
        ));
        // The paper's §1 example: retail_price encodes into 17 bits.
        part.add_column(Column::from_u64s(
            "p_retailprice",
            17,
            gen_codes(&mut rng, c.part, 1 << 17, 1 << 17, &d),
        ));
    }

    // customer.
    let cu_key_bits = width_for_max(c.customer as u64 - 1);
    let mut customer = Table::new("customer");
    {
        let mut rng = stream(seed, "customer");
        customer.add_column(Column::from_u64s(
            "c_name",
            cu_key_bits,
            (0..c.customer).map(|i| i as u64),
        ));
        customer.add_column(Column::from_u64s(
            "c_nation",
            5,
            gen_codes(&mut rng, c.customer, 25, 25, &d),
        ));
        customer.add_column(Column::from_u64s(
            "c_acctbal",
            16,
            gen_codes(&mut rng, c.customer, 1 << 16, 1 << 16, &d),
        ));
        customer.add_column(Column::from_u64s(
            "c_mktsegment",
            3,
            gen_codes(&mut rng, c.customer, 5, 5, &d),
        ));
        customer.add_column(Column::from_u64s(
            "c_phone",
            15,
            gen_codes(&mut rng, c.customer, 1 << 15, 1 << 15, &d),
        ));
    }

    // orders (dimension for lineitem; also the Q13 base table).
    let o_key_bits = width_for_max(c.orders as u64 - 1);
    let mut orders = Table::new("orders");
    {
        let mut rng = stream(seed, "orders");
        orders.add_column(Column::from_u64s(
            "o_orderkey",
            o_key_bits,
            (0..c.orders).map(|i| i as u64),
        ));
        orders.add_column(Column::from_u64s(
            "o_custkey",
            cu_key_bits,
            gen_codes(&mut rng, c.orders, c.customer as u64, c.customer as u64, &d),
        ));
        orders.add_column(Column::from_u64s(
            "o_orderdate",
            DATE_BITS,
            gen_codes(&mut rng, c.orders, DATE_DAYS, DATE_DAYS, &d),
        ));
        orders.add_column(Column::from_u64s(
            "o_shippriority",
            1,
            gen_codes(&mut rng, c.orders, 2, 2, &Distribution::Uniform),
        ));
        orders.add_column(Column::from_u64s(
            "o_orderpriority",
            3,
            gen_codes(&mut rng, c.orders, 5, 5, &d),
        ));
        orders.add_column(Column::from_u64s(
            "o_totalprice",
            20,
            gen_codes(&mut rng, c.orders, 1 << 20, 1 << 20, &d),
        ));
    }

    // --- lineitem fact ------------------------------------------------
    let mut lineitem = Table::new("lineitem");
    {
        let mut rng = stream(seed, "lineitem");
        let n = c.lineitem;
        lineitem.add_column(Column::from_u64s(
            "l_orderkey",
            o_key_bits,
            gen_codes(&mut rng, n, c.orders as u64, c.orders as u64, &d),
        ));
        lineitem.add_column(Column::from_u64s(
            "l_partkey",
            p_key_bits,
            gen_codes(&mut rng, n, c.part as u64, c.part as u64, &d),
        ));
        lineitem.add_column(Column::from_u64s(
            "l_suppkey",
            s_key_bits,
            gen_codes(&mut rng, n, c.supplier as u64, c.supplier as u64, &d),
        ));
        lineitem.add_column(Column::from_u64s(
            "l_quantity",
            6,
            gen_codes(&mut rng, n, 50, 50, &d),
        ));
        let extprice = gen_codes(&mut rng, n, 1 << 17, 1 << 17, &d);
        let discount = gen_codes(&mut rng, n, 11, 11, &d); // 0..10 percent
        let tax = gen_codes(&mut rng, n, 9, 9, &d);
        // Derived expression columns (materialized in the WideTable, a
        // standard denormalization trick; avoids expression evaluation
        // in the aggregator).
        let disc_price: Vec<u64> = extprice
            .iter()
            .zip(&discount)
            .map(|(&p, &dc)| p * (100 - dc) / 100)
            .collect();
        let charge: Vec<u64> = disc_price
            .iter()
            .zip(&tax)
            .map(|(&p, &t)| p * (100 + t) / 100)
            .collect();
        lineitem.add_column(Column::from_u64s("l_extendedprice", 17, extprice));
        lineitem.add_column(Column::from_u64s("l_discount", 4, discount));
        lineitem.add_column(Column::from_u64s("l_tax", 4, tax));
        lineitem.add_column(Column::from_u64s("l_disc_price", 18, disc_price));
        lineitem.add_column(Column::from_u64s("l_charge", 18, charge));
        lineitem.add_column(Column::from_u64s(
            "l_shipdate",
            DATE_BITS,
            gen_codes(&mut rng, n, DATE_DAYS, DATE_DAYS, &d),
        ));
        lineitem.add_column(Column::from_u64s(
            "l_returnflag",
            2,
            gen_codes(&mut rng, n, 3, 3, &d),
        ));
        lineitem.add_column(Column::from_u64s(
            "l_linestatus",
            1,
            gen_codes(&mut rng, n, 2, 2, &d),
        ));
        lineitem.add_column(Column::from_u64s(
            "l_shipmode",
            3,
            gen_codes(&mut rng, n, 7, 7, &d),
        ));
    }

    // --- WideTable: lineitem ⋈ orders ⋈ customer ⋈ part ⋈ supplier ----
    let wide = {
        let step1 = widen(
            "tpch_wide",
            &lineitem,
            &[
                DimensionJoin {
                    fk_column: "l_orderkey",
                    dimension: &orders,
                    select: vec![
                        ("o_custkey", "o_custkey"),
                        ("o_orderdate", "o_orderdate"),
                        ("o_shippriority", "o_shippriority"),
                        ("o_totalprice", "o_totalprice"),
                    ],
                },
                DimensionJoin {
                    fk_column: "l_partkey",
                    dimension: &part,
                    select: vec![("p_mfgr", "p_mfgr"), ("p_brand", "p_brand")],
                },
                DimensionJoin {
                    fk_column: "l_suppkey",
                    dimension: &supplier,
                    select: vec![("s_nation", "s_nation")],
                },
            ],
        );
        // Second hop: customer attributes via o_custkey, nation names via
        // the nation fks.
        let step2 = widen(
            "tpch_wide",
            &step1,
            &[DimensionJoin {
                fk_column: "o_custkey",
                dimension: &customer,
                select: vec![
                    ("c_nation", "c_nation"),
                    ("c_acctbal", "c_acctbal"),
                    ("c_phone", "c_phone"),
                    ("c_mktsegment", "c_mktsegment"),
                ],
            }],
        );
        let mut t = widen(
            "tpch_wide",
            &step2,
            &[
                DimensionJoin {
                    fk_column: "s_nation",
                    dimension: &nation,
                    select: vec![("n_region", "s_region")],
                },
                DimensionJoin {
                    fk_column: "c_nation",
                    dimension: &nation,
                    select: vec![("n_region", "c_region")],
                },
            ],
        );
        // Derived: order year (7 years, 1992..1998) from o_orderdate.
        let years: Vec<u64> = t
            .expect_column("o_orderdate")
            .codes()
            .iter_u64()
            .map(|dd| dd * 7 / DATE_DAYS)
            .collect();
        t.add_column(Column::from_u64s("o_year", 3, years));
        t
    };

    // --- WideTable: partsupp ⋈ part ⋈ supplier -------------------------
    let partsupp_wide = {
        let mut ps = Table::new("partsupp");
        let mut rng = stream(seed, "partsupp");
        let n = c.partsupp;
        ps.add_column(Column::from_u64s(
            "ps_partkey",
            p_key_bits,
            gen_codes(&mut rng, n, c.part as u64, c.part as u64, &d),
        ));
        ps.add_column(Column::from_u64s(
            "ps_suppkey",
            s_key_bits,
            gen_codes(&mut rng, n, c.supplier as u64, c.supplier as u64, &d),
        ));
        ps.add_column(Column::from_u64s(
            "ps_supplycost",
            14,
            gen_codes(&mut rng, n, 1 << 14, 1 << 14, &d),
        ));
        let step = widen(
            "partsupp_wide",
            &ps,
            &[
                DimensionJoin {
                    fk_column: "ps_partkey",
                    dimension: &part,
                    select: vec![
                        ("p_brand", "p_brand"),
                        ("p_type", "p_type"),
                        ("p_size", "p_size"),
                        ("p_retailprice", "p_retailprice"),
                    ],
                },
                DimensionJoin {
                    fk_column: "ps_suppkey",
                    dimension: &supplier,
                    select: vec![("s_nation", "s_nation"), ("s_acctbal", "s_acctbal")],
                },
            ],
        );
        widen(
            "partsupp_wide",
            &step,
            &[DimensionJoin {
                fk_column: "s_nation",
                dimension: &nation,
                select: vec![("n_region", "s_region")],
            }],
        )
    };

    let queries = queries(&wide, &orders);

    Workload {
        name: if params.skew.is_some() {
            "tpch_skew".into()
        } else {
            "tpch".into()
        },
        tables: vec![wide, partsupp_wide, orders],
        queries,
    }
}

fn queries(wide: &Table, _orders: &Table) -> Vec<BenchQuery> {
    let mut out = Vec::new();
    let date_cut = DATE_DAYS * 9 / 10;

    // Q1: pricing summary. GROUP BY returnflag, linestatus; ORDER BY same.
    {
        let mut q = Query::named("tpch_q1");
        q.filters = vec![Filter {
            column: "l_shipdate".into(),
            predicate: Predicate::Le(date_cut),
        }];
        q.group_by = vec!["l_returnflag".into(), "l_linestatus".into()];
        q.aggregates = vec![
            Agg::new(AggKind::Sum("l_quantity".into()), "sum_qty"),
            Agg::new(AggKind::Sum("l_extendedprice".into()), "sum_base_price"),
            Agg::new(AggKind::Sum("l_disc_price".into()), "sum_disc_price"),
            Agg::new(AggKind::Sum("l_charge".into()), "sum_charge"),
            Agg::new(AggKind::Avg("l_quantity".into()), "avg_qty"),
            Agg::new(AggKind::Avg("l_extendedprice".into()), "avg_price"),
            Agg::new(AggKind::Avg("l_discount".into()), "avg_disc"),
            Agg::new(AggKind::Count, "count_order"),
        ];
        q.order_by = vec![OrderKey::asc("l_returnflag"), OrderKey::asc("l_linestatus")];
        out.push(BenchQuery {
            name: "tpch_q1".into(),
            table: "tpch_wide".into(),
            spec: QuerySpec::Single(q),
        });
    }

    // Q2: minimum-cost supplier (ORDER BY 4 attributes; on partsupp_wide).
    {
        let mut q = Query::named("tpch_q2");
        q.filters = vec![
            Filter {
                column: "p_size".into(),
                predicate: Predicate::Eq(15),
            },
            Filter {
                column: "s_region".into(),
                predicate: Predicate::Eq(3),
            },
        ];
        q.select = vec![
            "s_acctbal".into(),
            "s_nation".into(),
            "p_brand".into(),
            "ps_partkey".into(),
        ];
        q.order_by = vec![
            OrderKey::desc("s_acctbal"),
            OrderKey::asc("s_nation"),
            OrderKey::asc("p_brand"),
            OrderKey::asc("ps_partkey"),
        ];
        out.push(BenchQuery {
            name: "tpch_q2".into(),
            table: "partsupp_wide".into(),
            spec: QuerySpec::Single(q),
        });
    }

    // Q3: shipping priority. GROUP BY 3; ORDER BY revenue DESC, date.
    {
        let mut q = Query::named("tpch_q3");
        q.filters = vec![
            Filter {
                column: "c_mktsegment".into(),
                predicate: Predicate::Eq(1),
            },
            Filter {
                column: "o_orderdate".into(),
                predicate: Predicate::Lt(DATE_DAYS / 2),
            },
            Filter {
                column: "l_shipdate".into(),
                predicate: Predicate::Gt(DATE_DAYS / 2),
            },
        ];
        q.group_by = vec![
            "l_orderkey".into(),
            "o_orderdate".into(),
            "o_shippriority".into(),
        ];
        q.aggregates = vec![Agg::new(AggKind::Sum("l_disc_price".into()), "revenue")];
        q.order_by = vec![OrderKey::desc("revenue"), OrderKey::asc("o_orderdate")];
        out.push(BenchQuery {
            name: "tpch_q3".into(),
            table: "tpch_wide".into(),
            spec: QuerySpec::Single(q),
        });
    }

    // Q7: volume shipping. GROUP BY supp_nation, cust_nation, year.
    {
        let mut q = Query::named("tpch_q7");
        q.filters = vec![
            Filter {
                column: "l_shipdate".into(),
                predicate: Predicate::Between(DATE_DAYS / 4, DATE_DAYS * 3 / 4),
            },
            Filter {
                column: "s_nation".into(),
                predicate: Predicate::Le(12),
            },
            Filter {
                column: "c_nation".into(),
                predicate: Predicate::Ge(6),
            },
        ];
        q.group_by = vec!["s_nation".into(), "c_nation".into(), "o_year".into()];
        q.aggregates = vec![Agg::new(AggKind::Sum("l_disc_price".into()), "revenue")];
        q.order_by = vec![
            OrderKey::asc("s_nation"),
            OrderKey::asc("c_nation"),
            OrderKey::asc("o_year"),
        ];
        out.push(BenchQuery {
            name: "tpch_q7".into(),
            table: "tpch_wide".into(),
            spec: QuerySpec::Single(q),
        });
    }

    // Q9: product-type profit. GROUP BY nation, year DESC.
    {
        let mut q = Query::named("tpch_q9");
        q.filters = vec![Filter {
            column: "p_mfgr".into(),
            predicate: Predicate::Eq(2),
        }];
        q.group_by = vec!["s_nation".into(), "o_year".into()];
        q.aggregates = vec![Agg::new(AggKind::Sum("l_disc_price".into()), "sum_profit")];
        q.order_by = vec![OrderKey::asc("s_nation"), OrderKey::desc("o_year")];
        out.push(BenchQuery {
            name: "tpch_q9".into(),
            table: "tpch_wide".into(),
            spec: QuerySpec::Single(q),
        });
    }

    // Q10: returned-item reporting. GROUP BY 4 customer attrs; ORDER BY
    // revenue DESC (aggregate -> two-stage inside the pipeline).
    {
        let mut q = Query::named("tpch_q10");
        q.filters = vec![
            Filter {
                column: "l_returnflag".into(),
                predicate: Predicate::Eq(2),
            },
            Filter {
                column: "o_orderdate".into(),
                predicate: Predicate::Between(DATE_DAYS / 3, DATE_DAYS / 3 + 90),
            },
        ];
        q.group_by = vec![
            "o_custkey".into(),
            "c_acctbal".into(),
            "c_phone".into(),
            "c_nation".into(),
        ];
        q.aggregates = vec![Agg::new(AggKind::Sum("l_disc_price".into()), "revenue")];
        q.order_by = vec![OrderKey::desc("revenue")];
        out.push(BenchQuery {
            name: "tpch_q10".into(),
            table: "tpch_wide".into(),
            spec: QuerySpec::Single(q),
        });
    }

    // Q13: customer distribution — two-level aggregation. Stage 1 groups
    // orders per customer; stage 2 groups customers per order count and
    // multi-column sorts (custdist, c_count) DESC.
    {
        let mut first = Query::named("tpch_q13a");
        first.filters = vec![Filter {
            column: "o_orderpriority".into(),
            predicate: Predicate::Ne(0),
        }];
        first.group_by = vec!["o_custkey".into()];
        first.aggregates = vec![Agg::new(AggKind::Count, "c_count")];

        let mut second = Query::named("tpch_q13b");
        second.group_by = vec!["c_count".into()];
        second.aggregates = vec![Agg::new(AggKind::Count, "custdist")];
        second.order_by = vec![OrderKey::desc("custdist"), OrderKey::desc("c_count")];
        out.push(BenchQuery {
            name: "tpch_q13".into(),
            table: "orders".into(),
            spec: QuerySpec::TwoStage { first, second },
        });
    }

    // Q16: parts/supplier relationship. GROUP BY brand, type, size with
    // COUNT DISTINCT suppliers; ORDER BY count DESC then keys.
    {
        let mut q = Query::named("tpch_q16");
        q.filters = vec![
            Filter {
                column: "p_brand".into(),
                predicate: Predicate::Ne(11),
            },
            Filter {
                column: "p_size".into(),
                predicate: Predicate::Le(35),
            },
        ];
        q.group_by = vec!["p_brand".into(), "p_type".into(), "p_size".into()];
        q.aggregates = vec![Agg::new(
            AggKind::CountDistinct("ps_suppkey".into()),
            "supplier_cnt",
        )];
        q.order_by = vec![
            OrderKey::desc("supplier_cnt"),
            OrderKey::asc("p_brand"),
            OrderKey::asc("p_type"),
            OrderKey::asc("p_size"),
        ];
        out.push(BenchQuery {
            name: "tpch_q16".into(),
            table: "partsupp_wide".into(),
            spec: QuerySpec::Single(q),
        });
    }

    // Q18: large-volume customers. GROUP BY 4 wide attributes;
    // ORDER BY totalprice DESC, orderdate.
    {
        let mut q = Query::named("tpch_q18");
        q.group_by = vec![
            "o_custkey".into(),
            "l_orderkey".into(),
            "o_orderdate".into(),
            "o_totalprice".into(),
        ];
        q.aggregates = vec![Agg::new(AggKind::Sum("l_quantity".into()), "sum_qty")];
        q.order_by = vec![OrderKey::desc("o_totalprice"), OrderKey::asc("o_orderdate")];
        out.push(BenchQuery {
            name: "tpch_q18".into(),
            table: "tpch_wide".into(),
            spec: QuerySpec::Single(q),
        });
    }

    // Every benchmark query must exercise a multi-column (>= 2 attribute)
    // sort somewhere in its pipeline. Q13's widest sort is the stage-2
    // ORDER BY re-sort over the grouped table, so measure the widest
    // sort anywhere, not just the planner-facing primary one.
    debug_assert!(out.iter().all(|b| b.spec.max_sort_width() >= 2));
    debug_assert!(wide.rows() > 0);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::suite::{run_bench_query, run_bench_query_naive};
    use mcs_engine::reference::assert_same_rows;
    use mcs_engine::EngineConfig;

    #[test]
    fn generates_consistent_widetable() {
        let w = tpch(&TpchParams {
            lineitem_rows: 4000,
            skew: None,
            seed: 1,
        });
        let t = w.table("tpch_wide");
        assert_eq!(t.rows(), 4000);
        // Spot-check: widths of the paper's flagship encodings.
        assert_eq!(t.expect_column("o_orderdate").width(), 12);
        assert_eq!(t.expect_column("l_extendedprice").width(), 17);
        assert!(t.expect_column("s_nation").stats().ndv <= 25);
        assert_eq!(w.queries.len(), 9);
    }

    #[test]
    fn skew_concentrates_values() {
        let u = tpch(&TpchParams {
            lineitem_rows: 8000,
            skew: None,
            seed: 2,
        });
        let s = tpch(&TpchParams {
            lineitem_rows: 8000,
            skew: Some(1.0),
            seed: 2,
        });
        let hist_u = &u
            .table("tpch_wide")
            .expect_column("l_quantity")
            .stats()
            .histogram;
        let hist_s = &s
            .table("tpch_wide")
            .expect_column("l_quantity")
            .stats()
            .histogram;
        let max_u = *hist_u.iter().max().unwrap() as f64;
        let max_s = *hist_s.iter().max().unwrap() as f64;
        // Zipf(1) puts much more mass in the hottest bucket.
        assert!(max_s > 1.5 * max_u, "u={max_u} s={max_s}");
    }

    #[test]
    fn all_queries_match_reference_small() {
        let w = tpch(&TpchParams {
            lineitem_rows: 3000,
            skew: None,
            seed: 3,
        });
        let cfg = EngineConfig::default();
        for bq in &w.queries {
            let (got, _) = run_bench_query(&w, bq, &cfg);
            let want = run_bench_query_naive(&w, bq);
            assert_same_rows(&got.columns, &want);
        }
    }

    #[test]
    fn all_queries_match_reference_skewed() {
        let w = tpch(&TpchParams {
            lineitem_rows: 2000,
            skew: Some(1.0),
            seed: 4,
        });
        let cfg = EngineConfig::without_massaging();
        for bq in &w.queries {
            let (got, _) = run_bench_query(&w, bq, &cfg);
            let want = run_bench_query_naive(&w, bq);
            assert_same_rows(&got.columns, &want);
        }
    }
}
