//! Tests for the suite plumbing: sort-instance extraction matches what
//! the engine pipeline would sort, and multi-stage timing combination.

use mcs_core::{multi_column_sort, verify_sorted, ExecConfig};
use mcs_engine::EngineConfig;
use mcs_workloads::suite::extract_sort_instance;
use mcs_workloads::{run_bench_query, tpch, TpchParams};

#[test]
fn extracted_instance_matches_query_shape() {
    let w = tpch(&TpchParams {
        lineitem_rows: 3000,
        skew: None,
        seed: 77,
    });

    // Q3 filters reduce rows; sort keys are the 3 GROUP BY columns.
    let bq = w.query("tpch_q3");
    let (cols, specs, inst) = extract_sort_instance(&w, bq);
    assert_eq!(cols.len(), 3);
    assert_eq!(specs.len(), 3);
    assert!(inst.rows < 3000, "filters should drop rows");
    assert!(cols.iter().all(|c| c.len() == inst.rows));
    // Widths match the wide table's columns.
    let t = w.table("tpch_wide");
    assert_eq!(specs[0].width, t.expect_column("l_orderkey").width());
    assert_eq!(specs[1].width, t.expect_column("o_orderdate").width());

    // The extracted columns sort correctly under P0.
    let refs: Vec<&mcs_columnar::CodeVec> = cols.iter().collect();
    let out = multi_column_sort(&refs, &specs, &inst.p0(), &ExecConfig::default())
        .expect("valid sort instance");
    verify_sorted(&refs, &specs, &out, true);
}

#[test]
fn two_stage_query_extracts_first_stage() {
    let w = tpch(&TpchParams {
        lineitem_rows: 2000,
        skew: None,
        seed: 78,
    });
    let bq = w.query("tpch_q13");
    let (_, specs, inst) = extract_sort_instance(&w, bq);
    // Stage 1 groups by o_custkey only.
    assert_eq!(specs.len(), 1);
    assert!(inst.rows > 0);
}

#[test]
fn combined_timings_cover_stages() {
    let w = tpch(&TpchParams {
        lineitem_rows: 2500,
        skew: None,
        seed: 79,
    });
    let bq = w.query("tpch_q13");
    let (_, ct) = run_bench_query(&w, bq, &EngineConfig::default());
    assert_eq!(ct.stages.len(), 2, "Q13 runs two stages");
    assert!(ct.total_ns >= ct.mcs_ns);
    assert_eq!(
        ct.rest_ns,
        ct.total_ns - ct.mcs_ns - ct.plan_search_ns,
        "rest is the complement of sorting + search"
    );
}
