//! EXPLAIN: run one multi-column GROUP BY and print the predicted-vs-
//! measured plan report, then dump the structured telemetry the pipeline
//! emitted along the way.
//!
//! Run with `cargo run --release --example explain`. The report shows the
//! MassagePlan the optimizer chose, the cost model's per-round prediction
//! (lookup / sort / boundary-scan terms of §4), the measured time of each
//! phase, and their ratio — the live counterpart of the paper's Table 1.

use codemassage::prelude::*;

fn main() {
    // A sorting-heavy instance: 256K rows, three group-by keys whose
    // widths (10 + 17 + 9 = 36 bits) straddle the 32-bit bank so the
    // planner has a real stitching/splitting decision to make.
    let n = 1 << 18;
    let mut sales = Table::new("sales");
    sales.add_column(Column::from_u64s(
        "nation",
        10,
        (0..n).map(|i| (i as u64).wrapping_mul(0x9e37_79b9) % 200),
    ));
    sales.add_column(Column::from_u64s(
        "ship_date",
        17,
        (0..n).map(|i| (i as u64).wrapping_mul(0x85eb_ca6b) % 100_000),
    ));
    sales.add_column(Column::from_u64s(
        "category",
        9,
        (0..n).map(|i| (i as u64).wrapping_mul(0xc2b2_ae35) % 400),
    ));
    sales.add_column(Column::from_u64s(
        "price",
        17,
        (0..n).map(|i| i as u64 % 1000),
    ));

    let mut q = Query::named("explain_demo");
    q.group_by = vec!["nation".into(), "ship_date".into(), "category".into()];
    q.aggregates = vec![Agg::new(AggKind::Sum("price".into()), "sum_price")];

    let cfg = EngineConfig::default();
    let result = run_query(&sales, &q, &cfg).unwrap();

    match ExplainReport::from_timings("explain_demo", &result.timings, &cfg.model) {
        Some(rep) => println!("{}", rep.render()),
        None => println!("query ran no multi-column sort"),
    }
    println!("result groups: {}", result.rows);

    // The run's machine-readable telemetry: one JSON line per span,
    // counter, and histogram. Empty (a lone meta line) when built with
    // `--no-default-features`.
    if codemassage::telemetry::is_enabled() {
        let path = codemassage::telemetry::write_run_report("results/telemetry", "explain_example")
            .expect("write telemetry run report");
        println!("telemetry run report: {}", path.display());
    }
}
