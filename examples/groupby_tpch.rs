//! A realistic analytics scenario: TPC-H Q18 ("large volume customers")
//! on a generated WideTable — the paper's widest GROUP BY — showing the
//! full pipeline (ByteSlice scan, lookup, ROGA-planned multi-column sort,
//! aggregation) and the speedup over column-at-a-time.
//!
//! Run with `cargo run --release --example groupby_tpch`.

use codemassage::prelude::*;
use codemassage::workloads::{run_bench_query, tpch, TpchParams};

fn main() {
    let n: usize = std::env::var("MCS_ROWS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1 << 19);
    println!("generating mini TPC-H WideTable ({n} lineitem rows)…");
    let w = tpch(&TpchParams {
        lineitem_rows: n,
        skew: None,
        seed: 7,
    });
    let q18 = w.query("tpch_q18");

    let off = EngineConfig::without_massaging();
    let on = EngineConfig::default();

    let (r_off, t_off) = run_bench_query(&w, q18, &off);
    let (r_on, t_on) = run_bench_query(&w, q18, &on);

    println!("\nTPC-H Q18: GROUP BY custkey, orderkey, orderdate, totalprice");
    println!(
        "  column-at-a-time: total {:>8.2} ms   multi-column sort {:>8.2} ms",
        t_off.total_ns as f64 / 1e6,
        t_off.mcs_ns as f64 / 1e6
    );
    println!(
        "  code massaging:   total {:>8.2} ms   multi-column sort {:>8.2} ms",
        t_on.total_ns as f64 / 1e6,
        t_on.mcs_ns as f64 / 1e6
    );
    println!(
        "  sort speedup {:.2}x, query speedup {:.2}x",
        t_off.mcs_ns as f64 / t_on.mcs_ns.max(1) as f64,
        t_off.total_ns as f64 / t_on.total_ns.max(1) as f64
    );
    if let Some(plan) = t_on.stages.first().and_then(|s| s.plan.as_ref()) {
        println!("  chosen plan: {plan}");
    }

    assert_eq!(r_off.rows, r_on.rows);
    println!("\n{} output groups; top rows by total price:", r_on.rows);
    let tp = r_on.column("o_totalprice").unwrap();
    let qty = r_on.column("sum_qty").unwrap();
    for i in 0..r_on.rows.min(5) {
        println!("  totalprice={:<8} sum_qty={}", tp[i], qty[i]);
    }
}
