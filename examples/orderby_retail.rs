//! The paper's §1 motivating example: `ORDER BY order_date, retail_price`
//! over encoded 12-bit / 17-bit columns — comparing the column-at-a-time
//! plan against the plans code massaging considers (stitching and
//! bit-borrowing), end to end with timings.
//!
//! Run with `cargo run --release --example orderby_retail`.

use std::time::Instant;

use codemassage::prelude::*;
use mcs_cost::KeyColumnStats;

fn main() {
    let n: usize = std::env::var("MCS_ROWS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1 << 20);

    // order_date: 2557 distinct days in 12 bits; retail_price: 17 bits.
    let mut state = 0x5EEDu64;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    let mut orders = Table::new("orders");
    orders.add_column(Column::from_u64s(
        "order_date",
        12,
        (0..n).map(|_| next() % 2557),
    ));
    orders.add_column(Column::from_u64s(
        "retail_price",
        17,
        (0..n).map(|_| next() % (1 << 17)),
    ));

    let mut q = Query::named("orderby");
    q.select = vec!["order_date".into(), "retail_price".into()];
    q.order_by = vec![OrderKey::asc("order_date"), OrderKey::asc("retail_price")];

    // The three §1 strategies, as explicit plans:
    let plans = [
        ("column-at-a-time P0", MassagePlan::from_widths(&[12, 17])),
        ("stitch (12+17 -> 29/[32])", MassagePlan::from_widths(&[29])),
        (
            "bit-borrow (13/[16] + 16/[16])",
            MassagePlan::from_widths(&[13, 16]),
        ),
    ];

    println!("ORDER BY order_date, retail_price over {n} rows\n");
    let mut baseline_ns = 0u64;
    for (name, plan) in &plans {
        let cfg = EngineConfig {
            planner: PlannerMode::Fixed(plan.clone()),
            ..EngineConfig::default()
        };
        let t = Instant::now();
        let r = run_query(&orders, &q, &cfg).unwrap();
        let ns = t.elapsed().as_nanos() as u64;
        if baseline_ns == 0 {
            baseline_ns = ns;
        }
        println!(
            "{name:32} {:>8.2} ms  (speedup {:.2}x)  mcs {:>8.2} ms",
            ns as f64 / 1e6,
            baseline_ns as f64 / ns as f64,
            r.timings.mcs_ns as f64 / 1e6,
        );
        // Verify ordering.
        let d = r.column("order_date").unwrap();
        let p = r.column("retail_price").unwrap();
        assert!((1..r.rows).all(|i| (d[i - 1], p[i - 1]) <= (d[i], p[i])));
    }

    // What does ROGA pick?
    let model = CostModel::with_defaults();
    let inst = SortInstance {
        rows: n,
        specs: vec![SortSpec::asc(12), SortSpec::asc(17)],
        stats: vec![
            KeyColumnStats::uniform(12, 2557.0),
            KeyColumnStats::uniform(17, n.min(1 << 17) as f64),
        ],
        want_final_groups: false,
    };
    let found = roga(&inst, &model, &RogaOptions::default()).expect("non-empty sort key");
    println!(
        "\nROGA chooses {} (estimated {:.2} ms, searched {} plans in {:?})",
        found.plan,
        found.est_cost / 1e6,
        found.plans_costed,
        found.elapsed
    );
}
