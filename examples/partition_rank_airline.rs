//! SQL:2003 window functions: the airline survey's Q2 —
//!
//! ```text
//! SELECT OriginAirportID, DistanceGroup, Passengers,
//!        RANK() OVER (PARTITION BY OriginAirportID, DistanceGroup
//!                     ORDER BY Passengers)
//! FROM Ticket WHERE ItinGeoType = 1
//! ```
//!
//! PARTITION BY triggers the same multi-column sorting that GROUP BY
//! does; code massaging stitches partition keys and the window order key.
//!
//! Run with `cargo run --release --example partition_rank_airline`.

use codemassage::prelude::*;
use codemassage::workloads::{airline, run_bench_query, AirlineParams};

fn main() {
    let n: usize = std::env::var("MCS_ROWS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1 << 19);
    println!("generating synthetic DB1B airline data ({n} ticket rows)…");
    let w = airline(&AirlineParams {
        ticket_rows: n,
        market_rows: 64,
        seed: 11,
    });
    let q2 = w.query("air_q2");

    let (r_off, t_off) = run_bench_query(&w, q2, &EngineConfig::without_massaging());
    let (r_on, t_on) = run_bench_query(&w, q2, &EngineConfig::default());

    println!("\nair_q2: RANK() OVER (PARTITION BY airport, distance_group ORDER BY passengers)");
    println!(
        "  column-at-a-time: {:>8.2} ms (sort {:>8.2} ms)",
        t_off.total_ns as f64 / 1e6,
        t_off.mcs_ns as f64 / 1e6
    );
    println!(
        "  code massaging:   {:>8.2} ms (sort {:>8.2} ms, plan {})",
        t_on.total_ns as f64 / 1e6,
        t_on.mcs_ns as f64 / 1e6,
        t_on.stages[0]
            .plan
            .as_ref()
            .map(|p| p.notation())
            .unwrap_or_default()
    );

    // Show the first partition's ranking.
    let airports = r_on.column("OriginAirportID").unwrap();
    let groups = r_on.column("DistanceGroup").unwrap();
    let pax = r_on.column("Passengers").unwrap();
    let ranks = r_on.column("rank").unwrap();
    println!("\nairport  dist_group  passengers  rank");
    for i in 0..r_on.rows.min(8) {
        println!(
            "{:<8} {:<11} {:<11} {}",
            airports[i], groups[i], pax[i], ranks[i]
        );
    }

    // Ranks agree between the two execution modes.
    assert_eq!(r_off.column("rank").unwrap(), r_on.column("rank").unwrap());
    println!("\nranks identical with and without massaging ✓");
}
