//! Quickstart: the paper's Figure 2 query, executed both ways.
//!
//! ```text
//! SELECT SUM(price) FROM sales GROUP BY nation_name, ship_date
//! ```
//!
//! Run with `cargo run --release --example quickstart`.

use codemassage::prelude::*;

fn main() {
    // Build a small encoded WideTable. In a real ingest the strings would
    // go through an order-preserving dictionary; here we use their codes
    // directly (nation_name is 10 bits, ship_date 17 bits — the widths of
    // the paper's running example).
    let nations = ["AUS", "AUS", "USA", "AUS", "USA", "CHN"];
    let dict = Dictionary::build(nations.iter().copied());
    let mut sales = Table::new("sales");
    sales.add_column(Column::from_u64s(
        "nation_name",
        10,
        nations.iter().map(|s| dict.encode(s)),
    ));
    sales.add_column(Column::from_u64s(
        "ship_date",
        17,
        [501u64, 1201, 301, 501, 301, 42],
    ));
    sales.add_column(Column::from_u64s("price", 17, [10u64, 50, 20, 30, 30, 7]));

    // The query of Figure 2.
    let mut q = Query::named("q1");
    q.group_by = vec!["nation_name".into(), "ship_date".into()];
    q.aggregates = vec![Agg::new(AggKind::Sum("price".into()), "sum_price")];

    // Register the table in a shared database and serve queries from
    // sessions: one without code massaging (column-at-a-time, Figure 2a) …
    let mut db = Database::new();
    db.register(sales);
    let off_session = Session::new(&db, EngineConfig::without_massaging());
    let off = off_session
        .query("sales", &q, QueryOptions::default())
        .unwrap();
    // … and one with it (Figure 2b): the optimizer stitches the two
    // columns into one 27-bit super-column and sorts once. prepare()
    // searches and caches the plan; execute() serves it.
    let on_session = Session::new(&db, EngineConfig::default());
    let prepared = on_session.prepare("sales", &q).unwrap();
    let on = prepared.execute(&on_session).unwrap();

    println!(
        "plan without massaging: {}",
        off.timings.plan.as_ref().unwrap()
    );
    println!(
        "plan with massaging:    {}",
        on.timings.plan.as_ref().unwrap()
    );
    println!(
        "plan served from the session cache: {} (hits {}, misses {})",
        on.timings.plan_cached(),
        on_session.cache_stats().hits,
        on_session.cache_stats().misses,
    );

    println!("\nnation_name  ship_date  SUM(price)");
    let names = on.column("nation_name").unwrap();
    let dates = on.column("ship_date").unwrap();
    let sums = on.column("sum_price").unwrap();
    for i in 0..on.rows {
        println!("{:<12} {:<10} {}", dict.decode(names[i]), dates[i], sums[i]);
    }

    // Same answer either way (Lemma 1).
    assert_eq!(off.columns, on.columns);
    println!("\nboth plans return identical results (Lemma 1) ✓");
}
