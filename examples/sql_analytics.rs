//! SQL front-end demo: run textual queries against the generated TPC-H
//! WideTable, with code massaging planning under the hood.
//!
//! Run with `cargo run --release --example sql_analytics`.

use codemassage::engine::{parse_query, run_query, EngineConfig};
use codemassage::workloads::{tpch, TpchParams};

fn main() {
    let n: usize = std::env::var("MCS_ROWS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1 << 18);
    println!("generating mini TPC-H ({n} lineitem rows)…\n");
    let w = tpch(&TpchParams {
        lineitem_rows: n,
        skew: None,
        seed: 3,
    });

    let queries = [
        // A Q1-style pricing summary (dates are day codes, 0..2556).
        "SELECT l_returnflag, l_linestatus, SUM(l_quantity) AS sum_qty, \
                AVG(l_extendedprice) AS avg_price, COUNT(*) AS n \
         FROM tpch_wide WHERE l_shipdate <= 2300 \
         GROUP BY l_returnflag, l_linestatus \
         ORDER BY l_returnflag, l_linestatus",
        // Revenue by supplier nation and year.
        "SELECT s_nation, o_year, SUM(l_disc_price) AS revenue \
         FROM tpch_wide GROUP BY s_nation, o_year \
         ORDER BY revenue DESC",
        // Windowed: rank parts by retail price within each brand.
        "SELECT p_brand, p_retailprice, \
                RANK() OVER (PARTITION BY p_brand ORDER BY p_retailprice DESC) \
         FROM partsupp_wide WHERE p_size <= 10",
    ];

    let cfg = EngineConfig::default();
    for sql in queries {
        println!("sql> {sql}");
        let (q, table) = parse_query(sql).expect("parse");
        let t = std::time::Instant::now();
        let r = run_query(w.table(&table), &q, &cfg).expect("well-formed demo query");
        let elapsed = t.elapsed();
        // Print header + first rows.
        let headers: Vec<&str> = r.columns.iter().map(|(n, _)| n.as_str()).collect();
        println!("  {}", headers.join("  |  "));
        for row in 0..r.rows.min(5) {
            let cells: Vec<String> = r.columns.iter().map(|(_, v)| v[row].to_string()).collect();
            println!("  {}", cells.join("  |  "));
        }
        if r.rows > 5 {
            println!("  … ({} rows)", r.rows);
        }
        if let Some(plan) = &r.timings.plan {
            println!(
                "  [{} rows in {:.1} ms; massage plan {}]\n",
                r.rows,
                elapsed.as_secs_f64() * 1e3,
                plan
            );
        } else {
            println!();
        }
    }
}
