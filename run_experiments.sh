#!/usr/bin/env bash
# Run every table/figure harness and record transcripts under results/.
# Usage: ./run_experiments.sh [rows]   (MCS_ROWS override applied to all)
set -u
cd "$(dirname "$0")"
mkdir -p results

BINS=(
  kernel_probe
  fig3_examples
  fig4_hill
  ext_radix
  fig1_breakdown
  fig7_q16_plans
  table2_search_time
  fig10_scaling
  fig8_mcs_speedup
  fig12_rho
  table1_plan_quality
  fig9_query_time
)

for bin in "${BINS[@]}"; do
  echo "=== $bin ==="
  if [ "${1:-}" != "" ]; then
    MCS_ROWS="$1" timeout 3600 cargo run --release -q -p mcs-bench --bin "$bin" \
      >"results/$bin.txt" 2>&1
  else
    timeout 3600 cargo run --release -q -p mcs-bench --bin "$bin" \
      >"results/$bin.txt" 2>&1
  fi
  status=$?
  if [ $status -ne 0 ]; then
    echo "  FAILED (exit $status) — see results/$bin.txt"
  else
    echo "  ok — results/$bin.txt"
  fi
done
echo "all harnesses done"
