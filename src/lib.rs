//! # codemassage
//!
//! A from-scratch Rust implementation of **"Fast Multi-Column Sorting in
//! Main-Memory Column-Stores"** (Wenjian Xu, Ziqiang Feng, Eric Lo —
//! SIGMOD 2016): *code massaging* for multi-column `ORDER BY` /
//! `GROUP BY` / `PARTITION BY`, together with every substrate the paper's
//! prototype builds on.
//!
//! This facade crate re-exports the workspace's public API:
//!
//! | module | contents |
//! |---|---|
//! | [`simd_sort`] | SIMD merge-sort (16/32/64-bit banks, key+oid pairs) |
//! | [`columnar`] | encoded columns, ByteSlice scans, WideTables |
//! | [`core`] | massage plans, the FIP kernel, the multi-column sort executor |
//! | [`cost`] | the calibrated, architecture-aware cost model (§4) |
//! | [`planner`] | ROGA (Algorithm 1), RRS baseline, exhaustive `A_i` |
//! | [`engine`] | the query pipeline: scan → lookup → sort → aggregate/rank |
//! | [`cancel`] | cooperative cancellation: tokens, deadlines, typed causes |
//! | [`workloads`] | TPC-H (+skew), TPC-DS, airline DB1B, Ex1–Ex4 micro data |
//! | [`server`] | TCP serving layer: the MCSQ wire protocol, one session per connection |
//! | [`client`] | blocking wire-protocol client mirroring the `Session` API |
//!
//! ## Quickstart
//!
//! ```
//! use codemassage::prelude::*;
//!
//! // A tiny WideTable.
//! let mut t = Table::new("sales");
//! t.add_column(Column::from_u64s("nation", 10, [3u64, 1, 3, 1, 2]));
//! t.add_column(Column::from_u64s("ship_date", 17, [500u64, 1201, 301, 1201, 42]));
//! t.add_column(Column::from_u64s("price", 17, [10u64, 20, 30, 40, 50]));
//!
//! // SELECT SUM(price) FROM sales GROUP BY nation, ship_date — the
//! // paper's Figure 2 query. The planner stitches the 10-bit and 17-bit
//! // sort keys into one 27-bit round instead of sorting twice.
//! let mut q = Query::named("q1");
//! q.group_by = vec!["nation".into(), "ship_date".into()];
//! q.aggregates = vec![Agg::new(AggKind::Sum("price".into()), "sum_price")];
//!
//! // Sessions plan a query shape once and serve the cached plan after.
//! let mut db = Database::new();
//! db.register(t);
//! let session = Session::new(&db, EngineConfig::default());
//! let prepared = session.prepare("sales", &q)?;
//! let result = prepared.execute(&session)?;
//! assert_eq!(result.rows, 4);
//! # Ok::<(), codemassage::engine::EngineError>(())
//! ```

pub use mcs_cancel as cancel;
pub use mcs_client as client;
pub use mcs_columnar as columnar;
pub use mcs_core as core;
pub use mcs_cost as cost;
pub use mcs_engine as engine;
pub use mcs_extsort as extsort;
pub use mcs_faults as faults;
pub use mcs_planner as planner;
pub use mcs_server as server;
pub use mcs_simd_sort as simd_sort;
pub use mcs_telemetry as telemetry;
pub use mcs_workloads as workloads;

/// One-stop imports for applications.
pub mod prelude {
    pub use mcs_cancel::{CancelCause, CancelToken};
    pub use mcs_columnar::{widen, Column, Dictionary, DimensionJoin, Predicate, Table};
    pub use mcs_core::{multi_column_sort, Bank, ExecConfig, MassagePlan, Round, SortSpec};
    pub use mcs_cost::{calibrate, CalibrationOptions, CostModel, MachineSpec, SortInstance};
    pub use mcs_engine::{
        result_to_table, run_query, Agg, AggKind, Database, DegradeReason, EngineConfig,
        EngineError, ExplainReport, Filter, OrderKey, PlanCacheStats, PlannerMode, PreparedQuery,
        Query, QueryOptions, QueryResult, Session,
    };
    pub use mcs_planner::{roga, rrs, RogaOptions, RrsOptions, SearchError};
    pub use mcs_simd_sort::{sort_pairs, sort_pairs_with, SortConfig};
}
