//! Allocation-budget tests for the warm-arena execution path.
//!
//! The tentpole claim of the `ExecArena` refactor is that a *warm*
//! prepared query — same plan fingerprint, same row count, buffers
//! already grown to their high-water mark — re-runs the entire
//! lookup → sort → scan round loop without touching the heap. This
//! suite installs the counting global allocator from `mcs-test-support`
//! and wires it into `ExecConfig::alloc_probe`, which samples the
//! counter immediately before and after the executor's round loop and
//! reports the difference in `ExecStats::round_loop_allocs`.
//!
//! The probe is `thread_allocation_count`: a thread-local counter, so
//! the bracket measures only the probing thread's own allocations. That
//! is what makes the zero assertion meaningful under
//! `Session::run_concurrent` — the round loop runs entirely on the
//! query's thread (with `threads(1)` intra-query), and sibling queries
//! allocating concurrently can no longer bleed into the count (they did
//! when the probe sampled the process-global counter, which is why
//! warm concurrent cells used to report hundreds of phantom
//! allocations).

#![allow(clippy::unwrap_used, clippy::expect_used)]

use mcs_engine::{Column, Database, EngineConfig, OrderKey, Query, QueryOptions, Session, Table};
use mcs_test_support::{allocation_count, thread_allocation_count, CountingAlloc};

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

fn sales_db(rows: usize) -> Database {
    let mut t = Table::new("sales");
    t.add_column(Column::from_u64s(
        "nation",
        5,
        (0..rows).map(|i| (i as u64 * 7) % 32),
    ));
    t.add_column(Column::from_u64s(
        "ship_date",
        11,
        (0..rows).map(|i| (i as u64 * 131) % 2048),
    ));
    t.add_column(Column::from_u64s(
        "price",
        16,
        (0..rows).map(|i| (i as u64 * 997) % 65536),
    ));
    let mut db = Database::new();
    db.register(t);
    db
}

fn probe_config() -> EngineConfig {
    let mut cfg = EngineConfig::builder().threads(1).build();
    cfg.exec.alloc_probe = Some(thread_allocation_count);
    cfg
}

fn orderby_query() -> Query {
    let mut q = Query::named("by_keys");
    q.order_by = vec![OrderKey::asc("nation"), OrderKey::desc("ship_date")];
    q.select = vec!["price".into()];
    q
}

#[test]
fn counting_allocator_observes_heap_traffic() {
    let (before, t_before) = (allocation_count(), thread_allocation_count());
    let v: Vec<u64> = Vec::with_capacity(64);
    assert!(
        allocation_count() > before,
        "a fresh Vec allocation must bump the global counter"
    );
    assert!(
        thread_allocation_count() > t_before,
        "a fresh Vec allocation must bump this thread's counter"
    );
    drop(v);

    // The thread-local counter is immune to other threads' traffic.
    // (Snapshot after `spawn`: spawning allocates on *this* thread.)
    let noise = std::thread::spawn(|| {
        let _noise: Vec<u64> = Vec::with_capacity(1024);
    });
    let t_before = thread_allocation_count();
    noise.join().unwrap();
    assert_eq!(
        thread_allocation_count(),
        t_before,
        "another thread's allocations must not bleed into this thread's count"
    );
}

#[test]
fn warm_round_loop_runs_with_zero_allocations() {
    let db = sales_db(4096);
    let session = Session::new(&db, probe_config());
    let prepared = session.prepare("sales", &orderby_query()).unwrap();

    // Cold run: the arena grows to its high-water mark; the round loop
    // is allowed (expected, even) to allocate here.
    let cold = prepared.execute(&session).unwrap();
    let cold_allocs = cold
        .timings
        .mcs_stats
        .round_loop_allocs
        .expect("probe configured");
    assert!(!cold.timings.mcs_stats.arena.is_empty());

    // Warm runs: every buffer the round loop touches — round keys,
    // gather spares, oids, group offsets, sort scratch — is already
    // sized, so the loop must not allocate at all.
    for run in 0..3 {
        let warm = prepared.execute(&session).unwrap();
        assert_eq!(
            warm.timings.mcs_stats.round_loop_allocs,
            Some(0),
            "warm run {run} allocated in the round loop (cold run did {cold_allocs})"
        );
        assert_eq!(warm.columns, cold.columns, "reuse must not change results");
    }
    let stats = session.arena_stats();
    assert!(stats.reuses >= 3, "warm runs reuse capacity: {stats:?}");
}

#[test]
fn warm_round_loop_is_allocation_free_across_plan_shapes() {
    // A wider three-column key exercises multi-round plans with lookups
    // and a B64 round; the warm guarantee is per cached plan shape.
    let db = sales_db(2048);
    let session = Session::new(&db, probe_config());
    let mut q = Query::named("by_three");
    q.order_by = vec![
        OrderKey::asc("nation"),
        OrderKey::asc("ship_date"),
        OrderKey::desc("price"),
    ];
    q.select = vec!["price".into()];
    let prepared = session.prepare("sales", &q).unwrap();
    prepared.execute(&session).unwrap();
    let warm = prepared.execute(&session).unwrap();
    assert_eq!(warm.timings.mcs_stats.round_loop_allocs, Some(0));
}

#[test]
fn stateless_queries_report_allocations_only_when_probed() {
    let db = sales_db(512);
    let r = mcs_engine::run_query(
        db.table("sales").unwrap(),
        &orderby_query(),
        &EngineConfig::builder().threads(1).build(),
    )
    .unwrap();
    assert_eq!(
        r.timings.mcs_stats.round_loop_allocs, None,
        "no probe configured, no count reported"
    );
}

#[test]
fn warm_scratch_sort_is_allocation_free() {
    // The layer below the executor: a serial segmented sort drawing all
    // working memory from a warm `WorkerScratch` must not allocate
    // (this is what the arena's zero-allocation guarantee rests on).
    use mcs_simd_sort::{
        sort_pairs_in_groups_parallel_scratch, GroupBounds, SortConfig, WorkerScratch,
    };
    let n = 4096usize;
    let orig: Vec<u16> = (0..n)
        .map(|i| (i as u64 * 2654435761 % 65536) as u16)
        .collect();
    let cfg = SortConfig::default();
    let mut scratch = WorkerScratch::new();
    let groups = GroupBounds::from_offsets(vec![0, n as u32]);
    let mut keys = orig.clone();
    let mut oids: Vec<u32> = (0..n as u32).collect();
    sort_pairs_in_groups_parallel_scratch(&mut keys, &mut oids, &groups, 1, &cfg, &mut scratch)
        .unwrap();
    for _ in 0..2 {
        keys.copy_from_slice(&orig);
        for (i, o) in oids.iter_mut().enumerate() {
            *o = i as u32;
        }
        let before = thread_allocation_count();
        sort_pairs_in_groups_parallel_scratch(&mut keys, &mut oids, &groups, 1, &cfg, &mut scratch)
            .unwrap();
        assert_eq!(thread_allocation_count() - before, 0, "warm sort allocated");
    }
}

#[test]
fn warm_concurrent_round_loops_run_with_zero_allocations() {
    // The regression this suite exists to catch: warm executions under
    // `run_concurrent` must report `round_loop_allocs == 0` for every
    // query, exactly like the serial path. With the old process-global
    // probe, threads=4 reported ~hundreds of phantom allocations per
    // warm cell (other workers' heap traffic inside the bracket).
    let db = sales_db(4096);
    let session = Session::new(&db, probe_config());
    let prepared: Vec<_> = (0..16)
        .map(|_| session.prepare("sales", &orderby_query()).unwrap())
        .collect();
    let threads = 4usize;
    let serial = prepared[0].execute(&session).unwrap();

    // Warm-up: a batch may draft fresh arenas into the session pool (at
    // most one per admission slot, and the pool only ever grows), so
    // within `threads + 1` batches one batch runs on all-warm arenas.
    let mut warmed = false;
    for _ in 0..=threads {
        let results = session.run_concurrent(&prepared, threads, QueryOptions::default());
        let allocs: Vec<u64> = results
            .iter()
            .map(|r| {
                r.as_ref()
                    .unwrap()
                    .timings
                    .mcs_stats
                    .round_loop_allocs
                    .expect("probe configured")
            })
            .collect();
        if allocs.iter().all(|&a| a == 0) {
            warmed = true;
            break;
        }
    }
    assert!(
        warmed,
        "no all-zero batch within {} warm-up batches",
        threads + 1
    );

    // And warm is sticky: every query of every later batch stays at 0.
    for batch in 0..2 {
        for (i, r) in session
            .run_concurrent(&prepared, threads, QueryOptions::default())
            .into_iter()
            .enumerate()
        {
            let r = r.unwrap();
            assert_eq!(
                r.timings.mcs_stats.round_loop_allocs,
                Some(0),
                "warm concurrent batch {batch}, query {i} allocated in the round loop"
            );
            assert_eq!(r.columns, serial.columns, "concurrent result mismatch");
        }
    }
}
