//! Allocation-budget tests for the warm-arena execution path.
//!
//! The tentpole claim of the `ExecArena` refactor is that a *warm*
//! prepared query — same plan fingerprint, same row count, buffers
//! already grown to their high-water mark — re-runs the entire
//! lookup → sort → scan round loop without touching the heap. This
//! suite installs the counting global allocator from `mcs-test-support`
//! and wires it into `ExecConfig::alloc_probe`, which samples the
//! counter immediately before and after the executor's round loop and
//! reports the difference in `ExecStats::round_loop_allocs`.
//!
//! The zero assertion holds for single-threaded execution: spawning
//! worker threads allocates by definition, and a concurrent thread
//! would perturb the process-global counter.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use mcs_engine::{Column, Database, EngineConfig, OrderKey, Query, Session, Table};
use mcs_test_support::{allocation_count, CountingAlloc};

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

fn sales_db(rows: usize) -> Database {
    let mut t = Table::new("sales");
    t.add_column(Column::from_u64s(
        "nation",
        5,
        (0..rows).map(|i| (i as u64 * 7) % 32),
    ));
    t.add_column(Column::from_u64s(
        "ship_date",
        11,
        (0..rows).map(|i| (i as u64 * 131) % 2048),
    ));
    t.add_column(Column::from_u64s(
        "price",
        16,
        (0..rows).map(|i| (i as u64 * 997) % 65536),
    ));
    let mut db = Database::new();
    db.register(t);
    db
}

fn probe_config() -> EngineConfig {
    let mut cfg = EngineConfig::builder().threads(1).build();
    cfg.exec.alloc_probe = Some(allocation_count);
    cfg
}

fn orderby_query() -> Query {
    let mut q = Query::named("by_keys");
    q.order_by = vec![OrderKey::asc("nation"), OrderKey::desc("ship_date")];
    q.select = vec!["price".into()];
    q
}

#[test]
fn counting_allocator_observes_heap_traffic() {
    let before = allocation_count();
    let v: Vec<u64> = Vec::with_capacity(64);
    assert!(
        allocation_count() > before,
        "a fresh Vec allocation must bump the counter"
    );
    drop(v);
}

#[test]
fn warm_round_loop_runs_with_zero_allocations() {
    let db = sales_db(4096);
    let session = Session::new(&db, probe_config());
    let prepared = session.prepare("sales", &orderby_query()).unwrap();

    // Cold run: the arena grows to its high-water mark; the round loop
    // is allowed (expected, even) to allocate here.
    let cold = prepared.execute(&session).unwrap();
    let cold_allocs = cold
        .timings
        .mcs_stats
        .round_loop_allocs
        .expect("probe configured");
    assert!(!cold.timings.mcs_stats.arena.is_empty());

    // Warm runs: every buffer the round loop touches — round keys,
    // gather spares, oids, group offsets, sort scratch — is already
    // sized, so the loop must not allocate at all.
    for run in 0..3 {
        let warm = prepared.execute(&session).unwrap();
        assert_eq!(
            warm.timings.mcs_stats.round_loop_allocs,
            Some(0),
            "warm run {run} allocated in the round loop (cold run did {cold_allocs})"
        );
        assert_eq!(warm.columns, cold.columns, "reuse must not change results");
    }
    let stats = session.arena_stats();
    assert!(stats.reuses >= 3, "warm runs reuse capacity: {stats:?}");
}

#[test]
fn warm_round_loop_is_allocation_free_across_plan_shapes() {
    // A wider three-column key exercises multi-round plans with lookups
    // and a B64 round; the warm guarantee is per cached plan shape.
    let db = sales_db(2048);
    let session = Session::new(&db, probe_config());
    let mut q = Query::named("by_three");
    q.order_by = vec![
        OrderKey::asc("nation"),
        OrderKey::asc("ship_date"),
        OrderKey::desc("price"),
    ];
    q.select = vec!["price".into()];
    let prepared = session.prepare("sales", &q).unwrap();
    prepared.execute(&session).unwrap();
    let warm = prepared.execute(&session).unwrap();
    assert_eq!(warm.timings.mcs_stats.round_loop_allocs, Some(0));
}

#[test]
fn stateless_queries_report_allocations_only_when_probed() {
    let db = sales_db(512);
    let r = mcs_engine::run_query(
        db.table("sales").unwrap(),
        &orderby_query(),
        &EngineConfig::builder().threads(1).build(),
    )
    .unwrap();
    assert_eq!(
        r.timings.mcs_stats.round_loop_allocs, None,
        "no probe configured, no count reported"
    );
}

#[test]
fn warm_scratch_sort_is_allocation_free() {
    // The layer below the executor: a serial segmented sort drawing all
    // working memory from a warm `WorkerScratch` must not allocate
    // (this is what the arena's zero-allocation guarantee rests on).
    use mcs_simd_sort::{
        sort_pairs_in_groups_parallel_scratch, GroupBounds, SortConfig, WorkerScratch,
    };
    let n = 4096usize;
    let orig: Vec<u16> = (0..n)
        .map(|i| (i as u64 * 2654435761 % 65536) as u16)
        .collect();
    let cfg = SortConfig::default();
    let mut scratch = WorkerScratch::new();
    let groups = GroupBounds::from_offsets(vec![0, n as u32]);
    let mut keys = orig.clone();
    let mut oids: Vec<u32> = (0..n as u32).collect();
    sort_pairs_in_groups_parallel_scratch(&mut keys, &mut oids, &groups, 1, &cfg, &mut scratch)
        .unwrap();
    for _ in 0..2 {
        keys.copy_from_slice(&orig);
        for (i, o) in oids.iter_mut().enumerate() {
            *o = i as u32;
        }
        let before = allocation_count();
        sort_pairs_in_groups_parallel_scratch(&mut keys, &mut oids, &groups, 1, &cfg, &mut scratch)
            .unwrap();
        assert_eq!(allocation_count() - before, 0, "warm sort allocated");
    }
}
