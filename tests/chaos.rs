//! Chaos suite: drive the full engine through the differential oracle
//! while deterministic faults fire at every seam the `mcs-faults` crate
//! instruments — planner search, search-deadline starvation, cost
//! evaluation, per-round sort execution, and worker-thread spawning.
//!
//! The contract under test is the graceful-degradation ladder:
//!
//! * the process never aborts — worker panics become data;
//! * every query either returns the *correct* result (via the `P_0` or
//!   scalar fallback rungs) or a typed [`EngineError`];
//! * each taken rung is recorded in `QueryTimings::degradations` and the
//!   `engine.degraded` telemetry counter.
//!
//! Only compiled with `--features faults`; the injection hooks fold to
//! constant `false` otherwise.
#![cfg(feature = "faults")]

use std::time::{Duration, Instant};

use codemassage::engine::reference::{assert_same_rows, naive_execute};
use codemassage::extsort::live_spill_dirs;
use codemassage::faults::{fired, points, set_delay_micros, with_armed, FireMode};
use codemassage::prelude::*;
use codemassage::telemetry;

fn chaos_table(n: usize) -> Table {
    let mut t = Table::new("sales");
    t.add_column(Column::from_u64s(
        "nation",
        10,
        (0..n).map(|i| (i as u64).wrapping_mul(0x9e37_79b9) % 50),
    ));
    t.add_column(Column::from_u64s(
        "ship_date",
        17,
        (0..n).map(|i| (i as u64).wrapping_mul(0x85eb_ca6b) % 5000),
    ));
    t.add_column(Column::from_u64s(
        "price",
        17,
        (0..n).map(|i| i as u64 % 1000),
    ));
    t
}

fn groupby_query() -> Query {
    let mut q = Query::named("chaos_groupby");
    q.group_by = vec!["nation".into(), "ship_date".into()];
    q.aggregates = vec![
        Agg::new(AggKind::Count, "cnt"),
        Agg::new(AggKind::Sum("price".into()), "sum_price"),
    ];
    q
}

/// Run under ROGA, check against the oracle, and return the rungs taken.
/// Telemetry counters are only asserted when the feature is on (the chaos
/// suite also builds under `--no-default-features --features faults`).
fn run_and_check(t: &Table, q: &Query, cfg: &EngineConfig) -> Vec<DegradeReason> {
    telemetry::reset();
    let r = run_query(t, q, cfg).expect("recoverable fault must not fail the query");
    let want = naive_execute(t, q);
    let got: Vec<(String, Vec<u64>)> = r.columns.clone();
    assert_same_rows(&got, &want);
    if telemetry::is_enabled() {
        let snap = telemetry::take_all();
        let counted = snap
            .counters
            .iter()
            .find(|(n, _)| *n == "engine.degraded")
            .map_or(0, |&(_, v)| v);
        assert_eq!(
            counted,
            r.timings.degradations.len() as u64,
            "every rung must be counted (counters: {:?})",
            snap.counters
        );
    }
    r.timings.degradations
}

/// Fault 1: the planner search itself errors out. The engine must fall
/// back to P0 and still produce the right answer.
#[test]
fn planner_search_failure_degrades_to_p0() {
    let t = chaos_table(4096);
    let q = groupby_query();
    let cfg = EngineConfig::default(); // ROGA
    let rungs = with_armed(&[(points::PLANNER_SEARCH, FireMode::Always)], || {
        let rungs = run_and_check(&t, &q, &cfg);
        assert!(fired(points::PLANNER_SEARCH) > 0, "fault never traversed");
        rungs
    });
    assert_eq!(rungs, vec![DegradeReason::PlanSearchFailed]);
}

/// Fault 2: the ρ deadline starves the search — it times out before a
/// single plan is costed. P0 runs without an estimate.
#[test]
fn deadline_starvation_runs_p0() {
    let t = chaos_table(4096);
    let q = groupby_query();
    let cfg = EngineConfig::default();
    let rungs = with_armed(&[(points::PLANNER_STARVE, FireMode::Always)], || {
        run_and_check(&t, &q, &cfg)
    });
    assert_eq!(rungs, vec![DegradeReason::DeadlineStarved]);
}

/// Fault 3: the cost model returns NaN for every plan. NaN comparisons
/// are all false, so the search's ranking is meaningless — the engine
/// must detect the non-finite estimate and trust Lemma 1 over it.
#[test]
fn nan_cost_estimates_degrade_to_p0() {
    let t = chaos_table(4096);
    let q = groupby_query();
    let cfg = EngineConfig {
        // No deadline: starvation can't mask the NaN path.
        planner: PlannerMode::Roga { rho: None },
        ..EngineConfig::default()
    };
    let rungs = with_armed(&[(points::COST_NAN, FireMode::Always)], || {
        let rungs = run_and_check(&t, &q, &cfg);
        assert!(fired(points::COST_NAN) > 0, "fault never traversed");
        rungs
    });
    assert_eq!(rungs, vec![DegradeReason::NonFiniteCost]);
}

/// Fault 4: a parallel-sort worker thread panics mid-round. The panic is
/// caught at the scope boundary, converted to a typed error carrying the
/// chunk index, and the engine re-runs the sort.
#[test]
fn worker_panic_is_caught_and_rerun() {
    let t = chaos_table(20_000); // big enough for the parallel path
    let q = groupby_query();
    let cfg = EngineConfig {
        exec: ExecConfig {
            threads: 4,
            ..ExecConfig::default()
        },
        ..EngineConfig::default()
    };
    let rungs = with_armed(&[(points::SIMD_WORKER_PANIC, FireMode::Once)], || {
        // Silence the injected worker's panic backtrace.
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let rungs = run_and_check(&t, &q, &cfg);
        std::panic::set_hook(prev);
        assert!(
            fired(points::SIMD_WORKER_PANIC) > 0,
            "fault never traversed"
        );
        rungs
    });
    assert_eq!(rungs.first(), Some(&DegradeReason::ExecFailed));
}

/// Fault 5: every round-sort attempt fails, under every plan — the P0
/// retry included. The engine must reach the bottom rung and answer via
/// the scalar comparator sort.
#[test]
fn persistent_round_failure_falls_to_scalar_sort() {
    let t = chaos_table(4096);
    let q = groupby_query();
    let cfg = EngineConfig::default();
    let rungs = with_armed(&[(points::CORE_ROUND_SORT, FireMode::Always)], || {
        run_and_check(&t, &q, &cfg)
    });
    assert_eq!(rungs.first(), Some(&DegradeReason::ExecFailed));
    assert_eq!(rungs.last(), Some(&DegradeReason::ScalarFallback));
}

/// The same ladder holds for ORDER BY (no grouping) and for the
/// grouped-result post-sort (TPC-H Q13's shape).
#[test]
fn orderby_and_post_sort_survive_round_faults() {
    let t = chaos_table(4096);

    let mut ob = Query::named("chaos_orderby");
    ob.order_by = vec![OrderKey::asc("nation"), OrderKey::desc("ship_date")];
    ob.select = vec!["nation".into(), "ship_date".into(), "price".into()];

    let mut post = groupby_query();
    post.order_by = vec![OrderKey::desc("cnt")];

    let cfg = EngineConfig::default();
    for q in [&ob, &post] {
        let rungs = with_armed(&[(points::CORE_ROUND_SORT, FireMode::Always)], || {
            run_and_check(&t, q, &cfg)
        });
        assert_eq!(
            rungs.last(),
            Some(&DegradeReason::ScalarFallback),
            "query {}",
            q.name
        );
    }
}

/// Offset-value coding rides the same degradation ladder. With the
/// in-cache threshold shrunk so the big first-round sort runs real
/// out-of-cache merge passes (the only place the codes act), round
/// faults must leave results oracle-correct with OVC on and off alike —
/// the fallback rungs never see the codes, and the clean path's
/// code-first comparisons must not change a single row.
#[test]
fn ovc_merge_path_survives_round_faults() {
    let t = chaos_table(8192);
    let mut q = Query::named("chaos_ovc_orderby");
    q.order_by = vec![OrderKey::asc("ship_date"), OrderKey::asc("price")];
    q.select = vec!["ship_date".into(), "price".into(), "nation".into()];

    for use_ovc in [true, false] {
        let mut cfg = EngineConfig::default();
        cfg.exec.sort.in_cache_bytes = 2048; // ~256-element runs: forces multiway passes
        cfg.exec.sort.use_ovc = use_ovc;
        cfg.model.ovc = use_ovc;

        // Clean run under the forced merge path.
        let rungs = run_and_check(&t, &q, &cfg);
        assert!(rungs.is_empty(), "no faults, no rungs (ovc={use_ovc})");

        // Every round-sort attempt fails: the ladder must still answer
        // through the scalar bottom rung.
        let rungs = with_armed(&[(points::CORE_ROUND_SORT, FireMode::Always)], || {
            run_and_check(&t, &q, &cfg)
        });
        assert_eq!(
            rungs.last(),
            Some(&DegradeReason::ScalarFallback),
            "ovc={use_ovc}"
        );
    }
}

/// A mid-round failure must not poison the session's execution arena.
/// The executor restores the arena's buffers on every exit path —
/// including a worker panic halfway through a round, which leaves
/// partially-permuted garbage in them — and the next execution on the
/// same session (same arena) must fully overwrite what it reads.
#[test]
fn mid_round_fault_does_not_poison_the_session_arena() {
    let t = chaos_table(20_000); // big enough for the parallel path
    let mut db = Database::new();
    db.register(t.clone());
    let cfg = EngineConfig {
        exec: ExecConfig {
            threads: 4,
            ..ExecConfig::default()
        },
        ..EngineConfig::default()
    };
    let session = Session::new(&db, cfg);
    let q = groupby_query();
    let prepared = session.prepare("sales", &q).expect("prepare");
    let want = naive_execute(&t, &q);

    // Warm the arena with a clean run first.
    let clean = prepared.execute(&session).expect("clean run");
    assert_same_rows(&clean.columns, &want);

    // Fault a worker mid-round: the query degrades but still answers
    // correctly, with the arena's buffers left mid-permutation.
    with_armed(&[(points::SIMD_WORKER_PANIC, FireMode::Once)], || {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let degraded = prepared.execute(&session).expect("ladder recovers");
        std::panic::set_hook(prev);
        assert!(
            fired(points::SIMD_WORKER_PANIC) > 0,
            "fault never traversed"
        );
        assert_eq!(
            degraded.timings.degradations.first(),
            Some(&DegradeReason::ExecFailed)
        );
        assert_same_rows(&degraded.columns, &want);
    });

    // Disarmed rerun on the same session reuses those buffers and must
    // be byte-identical to the pre-fault run.
    let after = prepared.execute(&session).expect("disarmed rerun");
    assert!(after.timings.degradations.is_empty(), "no rungs disarmed");
    assert_eq!(after.columns, clean.columns);
    let stats = session.arena_stats();
    assert!(
        stats.grows + stats.reuses >= 3,
        "every execution accounted: {stats:?}"
    );
}

/// The morsel-loop panic contract at the executor level, below the
/// degradation ladder: `simd.worker.panic` armed `Once` fires on the
/// first morsel some worker pops, mid-round. The sort must surface a
/// clean typed `WorkerPanicked` (never abort or hang — the sibling
/// workers drain the queue and join), the shared arena must come back
/// unpoisoned, and the disarmed rerun on that same arena must be
/// byte-identical to a fresh-buffer run.
#[test]
fn mid_morsel_worker_panic_is_typed_and_leaves_the_arena_clean() {
    use codemassage::core::{multi_column_sort_with, ExecArena, SortError};
    use mcs_columnar::CodeVec;

    let n = 30_000usize;
    let a = CodeVec::from_u64s(
        10,
        (0..n).map(|i| (i as u64).wrapping_mul(0x9e37_79b9) % 50),
    );
    let b = CodeVec::from_u64s(
        17,
        (0..n).map(|i| (i as u64).wrapping_mul(0x85eb_ca6b) % 5000),
    );
    let refs = vec![&a, &b];
    let specs = vec![SortSpec::asc(10), SortSpec::asc(17)];
    let plan = MassagePlan::column_at_a_time(&specs);
    let cfg = ExecConfig {
        threads: 4,
        want_final_groups: true,
        ..ExecConfig::default()
    };
    let clean = multi_column_sort(&refs, &specs, &plan, &cfg).expect("clean run");

    let mut arena = ExecArena::new();
    with_armed(&[(points::SIMD_WORKER_PANIC, FireMode::Once)], || {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let err = multi_column_sort_with(&refs, &specs, &plan, &cfg, &mut arena)
            .expect_err("armed worker panic must fail the sort");
        std::panic::set_hook(prev);
        assert!(
            fired(points::SIMD_WORKER_PANIC) > 0,
            "fault never traversed"
        );
        assert!(
            matches!(err, SortError::WorkerPanicked { .. }),
            "expected a typed WorkerPanicked, got {err:?}"
        );
    });

    // Disarmed rerun on the arena the panic unwound through.
    let after = multi_column_sort_with(&refs, &specs, &plan, &cfg, &mut arena)
        .expect("arena survived the panic");
    assert_eq!(after.oids, clean.oids, "post-panic rerun oids");
    assert_eq!(
        after.groups.offsets, clean.groups.offsets,
        "post-panic rerun group bounds"
    );
}

/// A memory budget small enough that the chaos queries' sort footprint
/// exceeds it, forcing the out-of-core path (and with it the
/// `extsort.spill.*` fault points) to run.
fn budgeted_cfg() -> EngineConfig {
    EngineConfig::builder()
        .threads(2)
        .memory_budget(48 * 1024)
        .build()
}

/// Spill fault A: every run-file *write* fails. The external sort
/// reports a typed spill error, the engine records the `spill_failed`
/// rung and reruns the same plan fully in memory — no abort, no wrong
/// answer, and nothing counted as spilled.
#[test]
fn spill_write_fault_degrades_to_in_memory() {
    let t = chaos_table(8192);
    let q = groupby_query();
    let cfg = budgeted_cfg();

    // Sanity: disarmed, the budget really does take the external path.
    let clean = run_query(&t, &q, &cfg).expect("budgeted run");
    assert!(clean.timings.spilled.runs >= 2, "budget never spilled");
    assert!(clean.timings.degradations.is_empty());

    telemetry::reset();
    with_armed(&[(points::EXTSORT_SPILL_WRITE, FireMode::Always)], || {
        let r = run_query(&t, &q, &cfg).expect("spill failure must not fail the query");
        assert!(
            fired(points::EXTSORT_SPILL_WRITE) > 0,
            "fault never traversed"
        );
        assert_eq!(r.timings.degradations, vec![DegradeReason::SpillFailed]);
        assert_eq!(r.timings.spilled.runs, 0, "a failed spill spills nothing");
        assert_same_rows(&r.columns, &naive_execute(&t, &q));
        if telemetry::is_enabled() {
            let snap = telemetry::take_all();
            let counted = snap
                .counters
                .iter()
                .find(|(n, _)| *n == "engine.degraded")
                .map_or(0, |&(_, v)| v);
            assert_eq!(counted, 1, "one rung, one count");
            // The rung's marker span carries the stable reason label.
            assert!(
                snap.spans.iter().any(|s| s.name == "engine.degraded"
                    && s.attrs.iter().any(|(k, v)| *k == "reason"
                        && *v == telemetry::AttrValue::Str("spill_failed".into()))),
                "no spill_failed-labelled degradation span"
            );
        }
    });
}

/// Spill fault B: run files write fine, but a *read* fails mid-merge.
/// Same contract — `spill_failed` rung, in-memory rerun, correct rows.
#[test]
fn spill_read_fault_degrades_to_in_memory() {
    let t = chaos_table(8192);
    let q = groupby_query();
    let cfg = budgeted_cfg();
    with_armed(&[(points::EXTSORT_SPILL_READ, FireMode::Nth(100))], || {
        let rungs = run_and_check(&t, &q, &cfg);
        assert!(
            fired(points::EXTSORT_SPILL_READ) > 0,
            "fault never traversed"
        );
        assert_eq!(rungs, vec![DegradeReason::SpillFailed]);
    });
}

/// Spill faults under probabilistic firing: whether or not the coin
/// lands on a spill I/O call, the query must answer correctly, and any
/// rung taken must be the spill one.
#[test]
fn probabilistic_spill_faults_stay_correct() {
    let t = chaos_table(8192);
    let q = groupby_query();
    let cfg = budgeted_cfg();
    for point in [points::EXTSORT_SPILL_WRITE, points::EXTSORT_SPILL_READ] {
        for seed in [1u64, 2, 3] {
            with_armed(
                &[(
                    point,
                    FireMode::Probability {
                        millionths: 300_000,
                        seed,
                    },
                )],
                || {
                    let rungs = run_and_check(&t, &q, &cfg);
                    assert!(
                        rungs.iter().all(|r| *r == DegradeReason::SpillFailed),
                        "{point}: unexpected rungs {rungs:?}"
                    );
                },
            );
        }
    }
}

/// Sweep: every registered fault point, in several deterministic firing
/// patterns, across query shapes — in memory and under a spill-forcing
/// memory budget. No process abort, and always either a correct answer
/// or (never, for these faults) a typed error.
#[test]
fn chaos_sweep_never_aborts_and_stays_correct() {
    let t = chaos_table(8192);
    let mut ob = Query::named("sweep_orderby");
    ob.order_by = vec![OrderKey::desc("price"), OrderKey::asc("nation")];
    ob.select = vec!["price".into(), "nation".into()];
    let queries = [groupby_query(), ob];

    let prev = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    for &point in points::ALL {
        for mode in [
            FireMode::Always,
            FireMode::Once,
            FireMode::Nth(3),
            FireMode::Probability {
                millionths: 500_000,
                seed: 0xC0FFEE,
            },
        ] {
            for q in &queries {
                // The budgeted config routes the sort out-of-core, so the
                // spill fault points actually traverse — and every *other*
                // fault also has to compose with the external path (chunk
                // sorts fail inside it, the ladder still recovers).
                for cfg in [EngineConfig::builder().threads(2).build(), budgeted_cfg()] {
                    with_armed(&[(point, mode)], || {
                        let r = run_query(&t, q, &cfg)
                            .expect("recoverable fault must not fail the query");
                        let want = naive_execute(&t, q);
                        assert_same_rows(&r.columns, &want);
                    });
                }
            }
        }
    }
    std::panic::set_hook(prev);
}

// ---------------------------------------------------------------------------
// Deadlines and cooperative cancellation
// ---------------------------------------------------------------------------
//
// The `exec.delay.*` fault points inject latency *inside* a chosen phase
// (massage, per-round loop, merge, spill write), so a deadline shorter
// than the injected delay deterministically expires while that phase is
// running. The contract under test, per phase:
//
// * the query fails with the typed `DeadlineExceeded` / `Cancelled`
//   error — never a wrapped `Sort(..)`;
// * the error unwinds without leaking spill directories or poisoning
//   the session arena: the same session then answers the same prepared
//   query byte-identically to a pre-fault clean run;
// * once the deadline has fired, the degradation ladder takes no
//   further rungs — a timed-out query never doubles its work.

/// Injected latency large enough that a deadline set mid-run is
/// guaranteed to expire during the armed delay point's sleep.
const DELAY_US: u64 = 150_000;
/// Headroom for the un-delayed phases to run before the armed one.
const HEADROOM: Duration = Duration::from_millis(50);

/// An already-expired deadline fails fast before *any* phase runs: an
/// armed-Always delay point at the massage entry never traverses.
#[test]
fn pre_expired_deadline_executes_no_phase() {
    let t = chaos_table(4096);
    let mut db = Database::new();
    db.register(t.clone());
    let session = Session::new(&db, EngineConfig::builder().threads(2).build());
    let q = groupby_query();

    with_armed(&[(points::EXEC_DELAY_MASSAGE, FireMode::Always)], || {
        let opts = QueryOptions::default().with_deadline(Instant::now());
        let err = session
            .query("sales", &q, opts)
            .expect_err("expired deadline must fail");
        assert!(matches!(err, EngineError::DeadlineExceeded), "{err}");
        assert_eq!(
            fired(points::EXEC_DELAY_MASSAGE),
            0,
            "massage started despite an already-expired deadline"
        );
    });

    // The fail-fast path held no resources: the session still answers.
    let r = session
        .query("sales", &q, QueryOptions::default())
        .expect("session reusable");
    assert_same_rows(&r.columns, &naive_execute(&t, &q));
}

/// Fire the deadline inside each pipeline phase in turn. Every case must
/// surface the typed error from *that* phase (the armed delay point
/// traversed), leak nothing, and leave the session able to reproduce a
/// pre-fault clean run byte-for-byte.
#[test]
fn deadline_fires_inside_every_phase_without_poisoning_the_session() {
    let t = chaos_table(8192);
    let mut db = Database::new();
    db.register(t.clone());
    let q = groupby_query();
    let want = naive_execute(&t, &q);

    let cases: [(&str, &str, bool); 4] = [
        (points::EXEC_DELAY_MASSAGE, "massage", false),
        (points::EXEC_DELAY_ROUND, "round", false),
        (points::EXEC_DELAY_MERGE, "merge", true),
        (points::EXEC_DELAY_SPILL, "spill", true),
    ];
    for (point, phase, budgeted) in cases {
        let cfg = if budgeted {
            budgeted_cfg()
        } else {
            EngineConfig::builder().threads(2).build()
        };
        let session = Session::new(&db, cfg);
        let prepared = session.prepare("sales", &q).expect("prepare");
        let clean = prepared.execute(&session).expect("clean warm run");
        assert_same_rows(&clean.columns, &want);

        with_armed(&[(point, FireMode::Always)], || {
            set_delay_micros(DELAY_US);
            let opts = QueryOptions::default().with_timeout(HEADROOM);
            let err = session
                .query("sales", &q, opts)
                .expect_err("deadline shorter than the injected delay");
            assert!(
                matches!(err, EngineError::DeadlineExceeded),
                "{phase}: {err}"
            );
            assert!(
                fired(point) > 0,
                "{phase}: delay never traversed — the deadline cannot have \
                 fired inside the phase under test"
            );
        });
        assert_eq!(
            live_spill_dirs(),
            0,
            "{phase}: cancellation leaked a spill directory"
        );

        // Same session, same prepared query: the abandoned run restored
        // its arena lease, so the rerun is clean and byte-identical.
        let after = prepared.execute(&session).expect("post-deadline rerun");
        assert!(
            after.timings.degradations.is_empty(),
            "{phase}: rerun took rungs {:?}",
            after.timings.degradations
        );
        assert_eq!(after.columns, clean.columns, "{phase}: rerun differs");
    }
}

/// Ladder interaction: a spill failure normally degrades to an in-memory
/// rerun (see `spill_write_fault_degrades_to_in_memory`) — but when the
/// deadline has already expired by the time the spill fails, the retry
/// is skipped. The injected delay expires the deadline *during* the
/// spill phase, and the spill-write fault then fails the external sort;
/// the typed error (instead of that test's `Ok`) is the proof the
/// in-memory retry never ran.
#[test]
fn expired_deadline_skips_the_spill_failed_retry() {
    let t = chaos_table(8192);
    let mut db = Database::new();
    db.register(t.clone());
    let session = Session::new(&db, budgeted_cfg());
    let q = groupby_query();

    telemetry::reset();
    with_armed(
        &[
            (points::EXEC_DELAY_SPILL, FireMode::Always),
            (points::EXTSORT_SPILL_WRITE, FireMode::Always),
        ],
        || {
            set_delay_micros(DELAY_US);
            let opts = QueryOptions::default().with_timeout(HEADROOM);
            let err = session
                .query("sales", &q, opts)
                .expect_err("no retry once the deadline has passed");
            assert!(matches!(err, EngineError::DeadlineExceeded), "{err}");
            assert!(
                fired(points::EXTSORT_SPILL_WRITE) > 0,
                "spill failure never reached"
            );
        },
    );
    assert_eq!(live_spill_dirs(), 0, "failed spill leaked its directory");
    if telemetry::is_enabled() {
        let snap = telemetry::take_all();
        let count = |name: &str| {
            snap.counters
                .iter()
                .find(|(n, _)| *n == name)
                .map_or(0, |&(_, v)| v)
        };
        assert_eq!(count("engine.degraded"), 1, "the spill rung is recorded");
        assert_eq!(count("engine.deadline_exceeded"), 1, "outcome counted");
    }

    // Disarmed, the same session answers the same query via a real spill.
    let r = session
        .query("sales", &q, QueryOptions::default())
        .expect("disarmed rerun");
    assert!(r.timings.spilled.runs >= 2, "budget no longer spills");
    assert_same_rows(&r.columns, &naive_execute(&t, &q));
}

/// A cancelled query never enters the degradation ladder: with every
/// sort attempt rigged to fail recoverably, cancellation during massage
/// must preempt the first sort attempt entirely — zero rungs, zero
/// sort-fault traversals, typed `Cancelled`.
#[test]
fn cancellation_preempts_the_degradation_ladder() {
    let t = chaos_table(8192);
    let mut db = Database::new();
    db.register(t.clone());
    let session = Session::new(&db, EngineConfig::builder().threads(2).build());
    let q = groupby_query();

    telemetry::reset();
    with_armed(
        &[
            (points::EXEC_DELAY_MASSAGE, FireMode::Always),
            (points::CORE_ROUND_SORT, FireMode::Always),
        ],
        || {
            set_delay_micros(DELAY_US);
            let token = CancelToken::new();
            let opts = QueryOptions::default().with_cancel(token.clone());
            std::thread::scope(|s| {
                s.spawn(|| {
                    std::thread::sleep(HEADROOM);
                    token.cancel();
                });
                let err = session
                    .query("sales", &q, opts)
                    .expect_err("cancelled mid-massage");
                assert!(matches!(err, EngineError::Cancelled), "{err}");
            });
            assert_eq!(
                fired(points::CORE_ROUND_SORT),
                0,
                "a cancelled query attempted a sort"
            );
        },
    );
    if telemetry::is_enabled() {
        let snap = telemetry::take_all();
        assert!(
            !snap.counters.iter().any(|(n, _)| *n == "engine.degraded"),
            "a cancelled query took ladder rungs: {:?}",
            snap.counters
        );
        assert!(
            snap.counters
                .iter()
                .any(|(n, v)| *n == "engine.cancelled" && *v == 1),
            "cancellation outcome not counted: {:?}",
            snap.counters
        );
    }
}

/// Manual cancellation beats a (much later) deadline on the same token:
/// the error cause reports what actually stopped the query.
#[test]
fn manual_cancel_wins_over_a_pending_deadline() {
    let t = chaos_table(8192);
    let mut db = Database::new();
    db.register(t.clone());
    let session = Session::new(&db, EngineConfig::builder().threads(2).build());
    let q = groupby_query();

    with_armed(&[(points::EXEC_DELAY_ROUND, FireMode::Always)], || {
        set_delay_micros(DELAY_US);
        let token = CancelToken::new();
        let opts = QueryOptions::default()
            .with_cancel(token.clone())
            .with_timeout(Duration::from_secs(600));
        std::thread::scope(|s| {
            s.spawn(|| {
                std::thread::sleep(HEADROOM);
                token.cancel();
            });
            let err = session
                .query("sales", &q, opts)
                .expect_err("cancelled mid-round");
            assert!(
                matches!(err, EngineError::Cancelled),
                "manual cancel must win over the far-future deadline: {err}"
            );
        });
        assert!(fired(points::EXEC_DELAY_ROUND) > 0, "delay never traversed");
    });

    let r = session
        .query("sales", &q, QueryOptions::default())
        .expect("session reusable");
    assert_same_rows(&r.columns, &naive_execute(&t, &q));
}

/// Spill-file hygiene across every exit path: a clean spilling run, a
/// fault-failed spill, and a deadline abandoned mid-merge must all leave
/// zero live spill directories *and* zero `mcs-extsort-<pid>-*` entries
/// on disk (the RAII guard, not just the happy path, deletes them).
#[test]
fn no_spill_files_survive_any_exit_path() {
    fn on_disk_spill_dirs() -> usize {
        let prefix = format!("mcs-extsort-{}-", std::process::id());
        std::fs::read_dir(std::env::temp_dir())
            .map(|rd| {
                rd.filter_map(Result::ok)
                    .filter(|e| e.file_name().to_string_lossy().starts_with(&prefix))
                    .count()
            })
            .unwrap_or(0)
    }

    let t = chaos_table(8192);
    let mut db = Database::new();
    db.register(t.clone());
    let session = Session::new(&db, budgeted_cfg());
    let q = groupby_query();
    let before = on_disk_spill_dirs();

    // Happy path: the run spills and cleans up after itself.
    let r = session
        .query("sales", &q, QueryOptions::default())
        .expect("budgeted run");
    assert!(r.timings.spilled.runs >= 2, "budget never spilled");
    assert_eq!(live_spill_dirs(), 0);
    assert_eq!(on_disk_spill_dirs(), before, "clean run left files");

    // Failed spill read mid-merge: degrades to in-memory, still clean.
    with_armed(&[(points::EXTSORT_SPILL_READ, FireMode::Nth(100))], || {
        let r = session
            .query("sales", &q, QueryOptions::default())
            .expect("ladder recovers");
        assert_eq!(r.timings.degradations, vec![DegradeReason::SpillFailed]);
    });
    assert_eq!(live_spill_dirs(), 0);
    assert_eq!(on_disk_spill_dirs(), before, "failed spill left files");

    // Deadline mid-merge: the run files were already fully written when
    // the error unwound, and the guard still removed them.
    with_armed(&[(points::EXEC_DELAY_MERGE, FireMode::Always)], || {
        set_delay_micros(DELAY_US);
        let opts = QueryOptions::default().with_timeout(HEADROOM);
        let err = session
            .query("sales", &q, opts)
            .expect_err("deadline mid-merge");
        assert!(matches!(err, EngineError::DeadlineExceeded), "{err}");
    });
    assert_eq!(live_spill_dirs(), 0);
    assert_eq!(on_disk_spill_dirs(), before, "abandoned merge left files");
}
