//! Session-layer stress tests: many threads executing repeated prepared
//! queries over one shared [`Database`], checked against the naive
//! differential oracle, with exact plan-cache accounting — and, under
//! `--features faults`, chaos runs proving a degraded query never
//! poisons the shared plan cache.

use codemassage::engine::reference::{assert_same_rows, naive_execute};
use codemassage::prelude::*;

/// Serialize tests in this binary: they reset shared global state (the
/// telemetry collector, the fault registry).
static SESSION_TEST_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

fn stress_table(n: usize) -> Table {
    let mut t = Table::new("sales");
    t.add_column(Column::from_u64s(
        "nation",
        10,
        (0..n).map(|i| (i as u64).wrapping_mul(0x9e37_79b9) % 50),
    ));
    t.add_column(Column::from_u64s(
        "ship_date",
        17,
        (0..n).map(|i| (i as u64).wrapping_mul(0x85eb_ca6b) % 5000),
    ));
    t.add_column(Column::from_u64s(
        "category",
        9,
        (0..n).map(|i| (i as u64).wrapping_mul(0xc2b2_ae35) % 300),
    ));
    t.add_column(Column::from_u64s(
        "price",
        17,
        (0..n).map(|i| i as u64 % 1000),
    ));
    t
}

fn stress_db(n: usize) -> Database {
    let mut db = Database::new();
    db.register(stress_table(n));
    db
}

/// Three distinct query shapes — three fingerprints, three cached plans.
fn shapes() -> Vec<Query> {
    let mut by_date = Query::named("by_date");
    by_date.order_by = vec![OrderKey::asc("ship_date"), OrderKey::asc("nation")];
    by_date.select = vec!["ship_date".into(), "nation".into(), "price".into()];

    let mut grouped = Query::named("grouped");
    grouped.group_by = vec!["nation".into(), "category".into()];
    grouped.aggregates = vec![
        Agg::new(AggKind::Count, "cnt"),
        Agg::new(AggKind::Sum("price".into()), "rev"),
    ];

    let mut filtered = Query::named("filtered");
    filtered.filters = vec![Filter {
        column: "price".into(),
        predicate: Predicate::Lt(500),
    }];
    filtered.order_by = vec![OrderKey::desc("price"), OrderKey::asc("category")];
    filtered.select = vec!["price".into(), "category".into()];

    vec![by_date, grouped, filtered]
}

/// N threads × repeated prepared queries: every result matches the
/// scalar reference, and the cache counters come out exact — one miss
/// per distinct shape (at prepare), one hit per execution.
#[test]
fn concurrent_prepared_queries_match_the_oracle_with_exact_cache_hits() {
    let _guard = SESSION_TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let db = stress_db(4096);
    let session = Session::new(&db, EngineConfig::default());

    let queries = shapes();
    let oracles: Vec<Vec<(String, Vec<u64>)>> = queries
        .iter()
        .map(|q| naive_execute(db.table("sales").unwrap(), q))
        .collect();

    // Prepare each shape once: one search (miss) per shape.
    let prepared: Vec<PreparedQuery> = queries
        .iter()
        .map(|q| session.prepare("sales", q).unwrap())
        .collect();
    let after_prepare = session.cache_stats();
    assert_eq!(after_prepare.misses, queries.len() as u64);
    assert_eq!(after_prepare.entries, queries.len());
    assert_eq!(after_prepare.hits, 0);

    // A batch of 8 repetitions of every shape, executed 4-way concurrent.
    const REPS: usize = 8;
    let batch: Vec<PreparedQuery> = (0..REPS).flat_map(|_| prepared.iter().cloned()).collect();
    for threads in [1, 4] {
        let results = session.run_concurrent(&batch, threads, QueryOptions::default());
        assert_eq!(results.len(), batch.len());
        for (i, r) in results.into_iter().enumerate() {
            let r = r.unwrap();
            assert_same_rows(&r.columns, &oracles[i % queries.len()]);
            assert!(
                r.timings.plan_cached(),
                "warm execution {i} must be served from the cache"
            );
            assert_eq!(r.timings.plan_search_ns, 0);
        }
    }

    // Exactly one hit per warm execution, not a miss more.
    let stats = session.cache_stats();
    assert_eq!(stats.hits, (2 * REPS * queries.len()) as u64);
    assert_eq!(stats.misses, queries.len() as u64);
    assert_eq!(stats.entries, queries.len());
    assert_eq!(stats.evictions, 0);
}

/// The admission gate really bounds concurrency: a batch larger than the
/// thread budget completes, in order, with every query answered.
#[test]
fn oversubscribed_batch_completes_in_order() {
    let _guard = SESSION_TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let db = stress_db(1024);
    let session = Session::new(&db, EngineConfig::default());
    let q = &shapes()[0];
    let prepared = session.prepare("sales", q).unwrap();
    let oracle = naive_execute(db.table("sales").unwrap(), q);

    let batch = vec![prepared; 32];
    let results = session.run_concurrent(&batch, 2, QueryOptions::default());
    assert_eq!(results.len(), 32);
    for r in results {
        assert_same_rows(&r.unwrap().columns, &oracle);
    }
}

/// Chaos mode: faults degrade each query individually — the answer stays
/// correct via the ladder — and never poison the shared plan cache with
/// a fallback plan.
#[cfg(feature = "faults")]
#[test]
fn chaos_degrades_per_query_without_poisoning_the_shared_cache() {
    use codemassage::faults::{points, with_armed, FireMode};

    let _guard = SESSION_TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let db = stress_db(2048);
    let q = &shapes()[0];
    let oracle = naive_execute(db.table("sales").unwrap(), q);

    // 1. Plan search fails while the cache is cold: the query degrades to
    //    P0 and the P0 stand-in must NOT be published.
    let session = Session::new(&db, EngineConfig::default());
    with_armed(&[(points::PLANNER_SEARCH, FireMode::Always)], || {
        let r = session.query("sales", q, QueryOptions::default()).unwrap();
        assert_same_rows(&r.columns, &oracle);
        assert!(r
            .timings
            .degradations
            .contains(&DegradeReason::PlanSearchFailed));
    });
    let stats = session.cache_stats();
    assert_eq!(
        (stats.entries, stats.misses),
        (0, 1),
        "a degraded search result must not be cached"
    );

    // 2. Disarmed: the next run searches cleanly and publishes its plan…
    let prepared = session.prepare("sales", q).unwrap();
    assert_eq!(session.cache_stats().entries, 1);

    // 3. …and an execution-time fault on a warm cache degrades that one
    //    query (correct answer via the ladder) while the cached plan —
    //    which is valid; the fault was transient — survives for the next
    //    execution to hit cleanly.
    with_armed(&[(points::CORE_ROUND_SORT, FireMode::Once)], || {
        let r = prepared.execute(&session).unwrap();
        assert_same_rows(&r.columns, &oracle);
        assert!(r.timings.degradations.contains(&DegradeReason::ExecFailed));
        assert!(r.timings.plan_cached(), "the plan itself came from cache");
    });
    let r = prepared.execute(&session).unwrap();
    assert_same_rows(&r.columns, &oracle);
    assert!(r.timings.degradations.is_empty(), "fault was transient");
    assert_eq!(r.timings.plan_search_ns, 0);
    let stats = session.cache_stats();
    assert_eq!(stats.entries, 1);
    assert_eq!(stats.hits, 2);
}
