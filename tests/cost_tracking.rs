//! Predicted-vs-actual cost-model regression: the per-round predictions
//! of [`mcs_cost::CostModel::t_mcs_rounds`] must track the executor's
//! measured round times within a generous, architecture-tolerant band.
//!
//! This is a sanity rail, not a benchmark: it catches the cost model and
//! the executor drifting apart (a changed constant, a phase the model no
//! longer prices, a round the executor stopped timing) while staying
//! robust to noisy CI machines. The plan shapes mirror the differential
//! oracle's coverage matrix (identity / stitch / borrow / split).

use mcs_columnar::CodeVec;
use mcs_core::{multi_column_sort, ExecConfig, MassagePlan, SortSpec};
use mcs_cost::{
    calibrate, CalibrationOptions, CostModel, KeyColumnStats, MachineSpec, SortInstance,
};
use mcs_test_support::Rng;

/// Ratio band: predicted/actual must land in [1/RATIO_BAND, RATIO_BAND].
/// Wide on purpose — the model's job is ranking plans, and even a 10×
/// miss would still rank correctly; a 50× miss means a term is missing
/// or double-counted. Debug builds run the executor 10–30× slower than
/// the calibrated (optimized) kernels, so the band widens to smoke-test
/// level there; the release run is the meaningful check.
const RATIO_BAND: f64 = if cfg!(debug_assertions) { 1000.0 } else { 50.0 };

/// Rounds (and totals) faster than this are skipped: timer noise and
/// constant overheads dominate below ~50µs.
const TIME_FLOOR_NS: f64 = 50_000.0;

/// Rows per instance — large enough that real rounds clear the floor
/// single-threaded, small enough to keep the test fast.
const ROWS: usize = 1 << 16;

fn quick_model() -> CostModel {
    // Quick calibration keeps the constants honest for *this* machine;
    // canned defaults would widen the band needed on exotic hardware.
    calibrate(MachineSpec::detect(), &CalibrationOptions::quick())
}

/// Build uniform random columns for `widths`, returning (cols, specs,
/// instance) like the workload extractor does.
fn build_instance(rng: &mut Rng, widths: &[u32]) -> (Vec<CodeVec>, Vec<SortSpec>, SortInstance) {
    let cols: Vec<CodeVec> = widths
        .iter()
        .map(|&w| CodeVec::from_u64s(w, (0..ROWS).map(|_| rng.gen::<u64>() & ((1u64 << w) - 1))))
        .collect();
    let specs: Vec<SortSpec> = widths
        .iter()
        .map(|&width| SortSpec {
            width,
            descending: false,
        })
        .collect();
    let stats = widths
        .iter()
        .map(|&w| KeyColumnStats::uniform(w, ((1u64 << w.min(40)) as f64).min(ROWS as f64)))
        .collect();
    let inst = SortInstance {
        rows: ROWS,
        specs: specs.clone(),
        stats,
        want_final_groups: true,
    };
    (cols, specs, inst)
}

fn check_plan(label: &str, model: &CostModel, widths: &[u32], plan: &MassagePlan) {
    let mut rng = Rng::stream(0x5EED_C057, label);
    let (cols, specs, inst) = build_instance(&mut rng, widths);
    let refs: Vec<&CodeVec> = cols.iter().collect();
    let cfg = ExecConfig {
        threads: 1, // predictions are single-core CPU time
        want_final_groups: true,
        ..ExecConfig::default()
    };
    // Warm one run (page faults, frequency ramp), measure the second.
    let _ = multi_column_sort(&refs, &specs, plan, &cfg).expect("valid sort instance");
    let out = multi_column_sort(&refs, &specs, plan, &cfg).expect("valid sort instance");

    let predicted = model.t_mcs_rounds(&inst, plan);
    assert_eq!(
        predicted.rounds.len(),
        out.stats.rounds.len(),
        "[{label}] model and executor disagree on round count"
    );

    let mut checked = 0usize;
    for (k, (pc, rs)) in predicted.rounds.iter().zip(&out.stats.rounds).enumerate() {
        let pred = pc.total();
        let meas = (rs.lookup_ns + rs.sort_ns + rs.scan_ns) as f64;
        if pred < TIME_FLOOR_NS || meas < TIME_FLOOR_NS {
            continue; // below the noise floor on at least one side
        }
        let ratio = pred / meas;
        assert!(
            (1.0 / RATIO_BAND..=RATIO_BAND).contains(&ratio),
            "[{label}] round {k}: predicted {pred:.0} ns vs measured {meas:.0} ns \
             (ratio {ratio:.2} outside [{:.3}, {RATIO_BAND}])",
            1.0 / RATIO_BAND
        );
        checked += 1;
    }

    let total_pred = predicted.total();
    let total_meas = out.stats.total_ns as f64;
    if total_pred >= TIME_FLOOR_NS && total_meas >= TIME_FLOOR_NS {
        let ratio = total_pred / total_meas;
        assert!(
            (1.0 / RATIO_BAND..=RATIO_BAND).contains(&ratio),
            "[{label}] total: predicted {total_pred:.0} ns vs measured {total_meas:.0} ns \
             (ratio {ratio:.2})"
        );
        checked += 1;
    }
    assert!(
        checked > 0,
        "[{label}] every round fell below the time floor — grow ROWS"
    );
}

#[test]
fn predictions_track_measurements_across_plan_shapes() {
    let model = quick_model();
    // The oracle matrix's four shapes over the paper's 10+17-bit running
    // example, plus a three-column instance that spans all three banks.
    let ex1 = &[10u32, 17];
    check_plan(
        "identity",
        &model,
        ex1,
        &MassagePlan::from_widths(&[10, 17]),
    );
    check_plan("stitch", &model, ex1, &MassagePlan::from_widths(&[27]));
    check_plan("borrow", &model, ex1, &MassagePlan::from_widths(&[11, 16]));
    check_plan("split", &model, ex1, &MassagePlan::from_widths(&[10, 9, 8]));

    let wide = &[10u32, 17, 20];
    check_plan(
        "three_banks",
        &model,
        wide,
        &MassagePlan::from_widths(&[10, 37]),
    );
}
