//! The cross-crate differential oracle harness.
//!
//! Drives the full pipeline — massage → lookup → segmented SIMD sort →
//! boundary scan → window rank / aggregates — and checks every output
//! against the naive scalar reference in `mcs-test-support`, which
//! shares no code with the engine.
//!
//! Coverage is enforced, not hoped for: the axis matrix test records a
//! cell for every (plan shape × SIMD bank × thread count × direction
//! mix × OVC on/off) it actually executed and then asserts the full
//! cross product is present, so dropping any axis from the driver loop
//! fails the test. The OVC axis rides inside `run_and_check`: every
//! problem runs the merge with offset-value codes enabled *and*
//! disabled, and the two outputs must be byte-identical.

use std::cell::RefCell;
use std::collections::BTreeSet;

use mcs_columnar::CodeVec;
use mcs_core::{
    multi_column_sort, multi_column_sort_with, Bank, ExecArena, ExecConfig, MassagePlan, Round,
    SortSpec,
};
use mcs_engine::rank_over;
use mcs_test_support::{
    check, degenerate_problems, gen_problem, random_specs, reference_aggregates, reference_rank,
    reference_sort, Dist, Reference, Rng, SortProblem,
};

/// The four plan shapes of §4: column-at-a-time (identity), merged
/// columns (stitch), a round boundary inside a column (borrow), and a
/// column cut across rounds (split).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum Shape {
    Identity,
    Stitch,
    Borrow,
    Split,
}

const SHAPES: [Shape; 4] = [Shape::Identity, Shape::Stitch, Shape::Borrow, Shape::Split];

/// Round widths realizing `shape` over columns of `widths`, or `None`
/// when the shape is not expressible (e.g. stitching a single column).
fn shape_widths(shape: Shape, widths: &[u32]) -> Option<Vec<u32>> {
    match shape {
        Shape::Identity => Some(widths.to_vec()),
        Shape::Stitch => {
            let mut out: Vec<u32> = Vec::new();
            for &w in widths {
                match out.last_mut() {
                    Some(last) if *last + w <= 64 => *last += w,
                    _ => out.push(w),
                }
            }
            (out != widths).then_some(out)
        }
        Shape::Borrow => {
            let i = (0..widths.len().saturating_sub(1))
                .find(|&i| widths[i] < 64 && widths[i + 1] >= 2)?;
            let mut out = widths.to_vec();
            out[i] += 1;
            out[i + 1] -= 1;
            Some(out)
        }
        Shape::Split => {
            let (j, &w) = widths.iter().enumerate().max_by_key(|(_, &w)| w)?;
            if w < 2 {
                return None;
            }
            let mut out = widths.to_vec();
            out[j] = w.div_ceil(2);
            out.insert(j + 1, w / 2);
            Some(out)
        }
    }
}

/// A plan running *every* round in `bank`, or `None` if some round does
/// not fit (the executor accepts any bank that holds the round width).
fn plan_in_bank(round_widths: &[u32], bank: Bank) -> Option<MassagePlan> {
    round_widths.iter().all(|&w| bank.holds(w)).then(|| {
        MassagePlan::new(
            round_widths
                .iter()
                .map(|&width| Round { width, bank })
                .collect(),
        )
    })
}

fn code_vecs(p: &SortProblem) -> Vec<CodeVec> {
    p.columns
        .iter()
        .zip(&p.widths)
        .map(|(c, &w)| CodeVec::from_u64s(w, c.iter().copied()))
        .collect()
}

fn sort_specs(p: &SortProblem) -> Vec<SortSpec> {
    p.widths
        .iter()
        .zip(&p.descending)
        .map(|(&width, &descending)| SortSpec { width, descending })
        .collect()
}

/// Run the full pipeline for `p` under `plan`/`threads` and check the
/// oid order, group bounds, per-group membership, window ranks, and
/// per-group aggregates against the scalar reference.
fn run_and_check(
    label: &str,
    p: &SortProblem,
    reference: &Reference,
    plan: &MassagePlan,
    threads: usize,
) {
    let cols = code_vecs(p);
    let refs: Vec<&CodeVec> = cols.iter().collect();
    let specs = sort_specs(p);
    let cfg = ExecConfig {
        threads,
        want_final_groups: true,
        ..ExecConfig::default()
    };
    let out = multi_column_sort(&refs, &specs, plan, &cfg).expect("valid sort instance");
    mcs_test_support::assert_matches_reference(
        label,
        p,
        reference,
        &out.oids,
        Some(&out.groups.offsets),
    );

    // The arena path must be byte-identical to the fresh-buffer path.
    // One arena is shared across every problem this thread checks, so
    // buffers arrive polluted by prior plans, sizes, and banks — exactly
    // the reuse pattern a session produces.
    thread_local! {
        static ARENA: RefCell<ExecArena> = RefCell::new(ExecArena::new());
    }
    let arena_out = ARENA
        .with(|a| multi_column_sort_with(&refs, &specs, plan, &cfg, &mut a.borrow_mut()))
        .expect("valid sort instance (arena path)");
    assert_eq!(arena_out.oids, out.oids, "[{label}] arena path oids");
    assert_eq!(
        arena_out.groups.offsets, out.groups.offsets,
        "[{label}] arena path group bounds"
    );

    // Cancel-then-retry axis: a run abandoned by a fired token on the
    // same shared arena must fail with the typed cancellation error and
    // leave the arena reusable — the immediate retry on that arena has
    // to stay byte-identical to the fresh-buffer output.
    let cancelled_cfg = {
        let mut c = cfg.clone();
        c.sort.cancel = mcs_core::CancelToken::new();
        c.sort.cancel.cancel();
        c
    };
    let err = ARENA
        .with(|a| multi_column_sort_with(&refs, &specs, plan, &cancelled_cfg, &mut a.borrow_mut()))
        .expect_err("a fired token must cancel the sort");
    assert!(
        matches!(err, mcs_core::SortError::Cancelled(_)),
        "[{label}] wrong cancellation error: {err:?}"
    );
    let retry = ARENA
        .with(|a| multi_column_sort_with(&refs, &specs, plan, &cfg, &mut a.borrow_mut()))
        .expect("retry after a cancelled run");
    assert_eq!(retry.oids, out.oids, "[{label}] cancel-then-retry oids");
    assert_eq!(
        retry.groups.offsets, out.groups.offsets,
        "[{label}] cancel-then-retry group bounds"
    );

    // Offset-value coding is a pure accelerator: the default run above
    // merges with OVC (SortConfig::default), and the same pipeline with
    // the codes disabled must produce byte-identical output.
    let mut no_ovc_cfg = cfg.clone();
    no_ovc_cfg.sort.use_ovc = false;
    let no_ovc =
        multi_column_sort(&refs, &specs, plan, &no_ovc_cfg).expect("valid sort instance (no OVC)");
    assert_eq!(no_ovc.oids, out.oids, "[{label}] OVC changed the oid order");
    assert_eq!(
        no_ovc.groups.offsets, out.groups.offsets,
        "[{label}] OVC changed the group bounds"
    );

    // Spill axis: the same problem under memory budgets of 1/4 and 1/16
    // of the sort's in-memory footprint runs the out-of-core path
    // (chunk → run files → streaming OVC merge) and must be
    // byte-identical to the in-memory output — oids *and* group bounds.
    // Tiny inputs whose chunk still fits the budget delegate in-memory,
    // which is exactly the production dispatch and equally checked.
    let footprint = mcs_core::lease_footprint_bytes(plan, p.num_rows());
    for div in [4usize, 16] {
        let spilled = ARENA
            .with(|a| {
                mcs_extsort::external_multi_column_sort_with(
                    &refs,
                    &specs,
                    plan,
                    &cfg,
                    &mut a.borrow_mut(),
                    (footprint / div).max(1),
                )
            })
            .expect("valid sort instance (external path)");
        assert_eq!(
            spilled.0.oids, out.oids,
            "[{label}] spill(1/{div}) changed the oid order"
        );
        assert_eq!(
            spilled.0.groups.offsets, out.groups.offsets,
            "[{label}] spill(1/{div}) changed the group bounds"
        );
    }

    // Aggregates over the first column's raw codes, per final tie group.
    let want_agg = reference_aggregates(reference, &p.columns[0]);
    let got_counts: Vec<u64> = out.groups.iter().map(|g| g.len() as u64).collect();
    let got_sums: Vec<u64> = out
        .groups
        .iter()
        .map(|g| {
            g.clone()
                .map(|pos| p.columns[0][out.oids[pos] as usize])
                .fold(0u64, u64::wrapping_add)
        })
        .collect();
    assert_eq!(got_counts, want_agg.counts, "[{label}] group counts");
    assert_eq!(got_sums, want_agg.sums, "[{label}] group sums");

    // RANK() OVER (PARTITION BY col0 ORDER BY col1..): partitions are
    // the tie runs on the first column of the sorted output; the window
    // key is the direction-adjusted concatenation of the rest (the
    // engine pipeline's construction). Needs the window key to fit u64.
    let window_width: u32 = p.widths[1..].iter().sum();
    if p.num_cols() >= 2 && window_width <= 64 {
        let n = p.num_rows();
        let mut partition_offsets = vec![0u32];
        for pos in 1..n {
            let (a, b) = (out.oids[pos - 1] as usize, out.oids[pos] as usize);
            if p.adjusted(0, a) != p.adjusted(0, b) {
                partition_offsets.push(pos as u32);
            }
        }
        partition_offsets.push(n as u32);
        let window_keys: Vec<u64> = out
            .oids
            .iter()
            .map(|&o| {
                p.widths[1..]
                    .iter()
                    .enumerate()
                    .fold(0u64, |k, (i, &w)| (k << w) | p.adjusted(i + 1, o as usize))
            })
            .collect();
        let parts = mcs_core::GroupBounds::from_offsets(partition_offsets.clone());
        let got_ranks = rank_over(&parts, &window_keys);
        let want_ranks = reference_rank(&partition_offsets, &window_keys);
        assert_eq!(got_ranks, want_ranks, "[{label}] window ranks");
    }
}

/// The enforced axis matrix: every plan shape × every SIMD bank ×
/// threads ∈ {1, 4} × ascending-only and mixed-direction keys, each
/// under two value distributions.
#[test]
fn full_axis_matrix_against_reference() {
    // Column widths per bank, chosen so every shape's rounds fit the
    // bank: e.g. stitching [13, 12] gives a 25-bit round (B32-only),
    // splitting [40, 20] gives 20-bit rounds that still *run* in B64.
    let widths_for = |bank: Bank| -> Vec<u32> {
        match bank {
            Bank::B16 => vec![7, 6],
            Bank::B32 => vec![13, 12],
            Bank::B64 => vec![40, 20],
        }
    };

    let mut rng = Rng::seed_from_u64(0xD1FF_0AC1E_u64);
    let mut covered: BTreeSet<(Shape, u32, usize, bool, bool, usize)> = BTreeSet::new();

    for bank in Bank::ALL {
        for shape in SHAPES {
            let widths = widths_for(bank);
            let round_widths = shape_widths(shape, &widths)
                .unwrap_or_else(|| panic!("{shape:?} not expressible over {widths:?}"));
            let plan = plan_in_bank(&round_widths, bank)
                .unwrap_or_else(|| panic!("{shape:?}/{bank:?} rounds {round_widths:?} overflow"));
            for threads in [1usize, 4] {
                for mixed in [false, true] {
                    for dist in [Dist::Uniform, Dist::DupHeavy] {
                        let specs: Vec<_> = widths
                            .iter()
                            .enumerate()
                            .map(|(i, &width)| mcs_test_support::ColumnSpec {
                                width,
                                descending: mixed && i % 2 == 1,
                            })
                            .collect();
                        let p = gen_problem(&mut rng, 400, &specs, dist);
                        let reference = reference_sort(&p);
                        let label = format!(
                            "{shape:?}/{bank:?}/t{threads}/{}/{dist:?}",
                            if mixed { "mixed" } else { "asc" }
                        );
                        run_and_check(&label, &p, &reference, &plan, threads);
                        // run_and_check executes the merge with OVC on
                        // (the default) and off, and the sort in memory
                        // (divisor 0) and under footprint/4 and
                        // footprint/16 budgets; every cell is covered.
                        for ovc in [true, false] {
                            for budget_div in [0usize, 4, 16] {
                                covered.insert((
                                    shape,
                                    bank.bits(),
                                    threads,
                                    mixed,
                                    ovc,
                                    budget_div,
                                ));
                            }
                        }
                    }
                }
            }
        }
    }

    // The coverage contract, spelled out with its own literals so that
    // dropping an axis from the driver loops above fails here.
    for shape in [Shape::Identity, Shape::Stitch, Shape::Borrow, Shape::Split] {
        for bank_bits in [16u32, 32, 64] {
            for threads in [1usize, 4] {
                for mixed in [false, true] {
                    for ovc in [true, false] {
                        for budget_div in [0usize, 4, 16] {
                            assert!(
                                covered.contains(&(shape, bank_bits, threads, mixed, ovc, budget_div)),
                                "axis cell dropped: {shape:?} x B{bank_bits} x {threads} threads x mixed={mixed} x ovc={ovc} x budget 1/{budget_div}"
                            );
                        }
                    }
                }
            }
        }
    }
    assert_eq!(covered.len(), 4 * 3 * 2 * 2 * 2 * 3);
}

/// Randomized sweep: arbitrary column sets (totals past 64 bits force
/// multi-round plans), all seven value distributions, every expressible
/// shape, random thread counts.
#[test]
fn random_problems_every_shape_and_distribution() {
    check("random_problems_every_shape_and_distribution", 48, |rng| {
        let specs = random_specs(rng, 4, 90);
        let n = rng.gen_range(0..500usize);
        let dist = *rng.choose(&Dist::ALL);
        let p = gen_problem(rng, n, &specs, dist);
        let reference = reference_sort(&p);
        let widths = p.widths.clone();
        for shape in SHAPES {
            let Some(round_widths) = shape_widths(shape, &widths) else {
                continue;
            };
            let plan = MassagePlan::from_widths(&round_widths);
            let threads = *rng.choose(&[1usize, 4]);
            let label = format!("random/{shape:?}/t{threads}/{dist:?}/n{n}");
            run_and_check(&label, &p, &reference, &plan, threads);
        }
    });
}

/// The out-of-core dispatch under a budget tiny enough to force several
/// spilled runs — the cell CI's spill step pins down. Byte-identity with
/// the in-memory path is re-checked here on a larger instance than the
/// matrix uses, and the run count is asserted so a silently widening
/// chunk heuristic (which would quietly stop exercising the merge)
/// fails loudly.
#[test]
fn tiny_budget_forces_at_least_four_spilled_runs() {
    let mut rng = Rng::seed_from_u64(0x5B11);
    let specs = [
        mcs_test_support::ColumnSpec {
            width: 11,
            descending: false,
        },
        mcs_test_support::ColumnSpec {
            width: 29,
            descending: true,
        },
    ];
    let p = gen_problem(&mut rng, 3_000, &specs, Dist::DupHeavy);
    let cols = code_vecs(&p);
    let refs: Vec<&CodeVec> = cols.iter().collect();
    let sspecs = sort_specs(&p);
    let plan = MassagePlan::column_at_a_time(&sspecs);
    let cfg = ExecConfig {
        want_final_groups: true,
        ..ExecConfig::default()
    };
    let want = multi_column_sort(&refs, &sspecs, &plan, &cfg).expect("in-memory sort");

    let budget = mcs_core::lease_footprint_bytes(&plan, p.num_rows()) / 8;
    let mut arena = ExecArena::new();
    let (got, spill) = mcs_extsort::external_multi_column_sort_with(
        &refs, &sspecs, &plan, &cfg, &mut arena, budget,
    )
    .expect("external sort");
    assert!(
        spill.runs >= 4,
        "budget {budget} spilled only {} runs",
        spill.runs
    );
    assert!(spill.bytes > 0);
    assert!(spill.merge_comparisons > 0);
    assert_eq!(got.oids, want.oids, "spilled oid order");
    assert_eq!(got.groups.offsets, want.groups.offsets, "spilled groups");
}

/// The work-stealing axis: one group holding >90% of the rows after
/// round 1 makes the static per-worker seeding maximally unbalanced, so
/// the workers that finish their small groups early must steal from the
/// owner of the giant one. Across threads {1, 2, 4, 8} the output must
/// stay byte-identical to the serial run (and match the scalar
/// reference), and at threads >= 2 at least one steal must be observed —
/// retried a bounded number of times because on a loaded machine the
/// straggler can finish before anyone gets to steal, while byte-identity
/// is asserted on *every* attempt.
#[test]
fn skewed_group_distribution_steals_and_stays_byte_identical() {
    let mut rng = Rng::seed_from_u64(0x53EA1);
    let n = 40_000usize;
    // Column 1 (6 bits): 95% of rows share value 0 -> one giant group
    // after round 1. Column 2 (17 bits): random, so the giant group is
    // real sorting work in round 2, not a tie run.
    let c1: Vec<u64> = (0..n)
        .map(|_| {
            if rng.gen_range(0..100u64) < 95 {
                0
            } else {
                1 + rng.gen_range(0..62u64)
            }
        })
        .collect();
    let c2: Vec<u64> = (0..n).map(|_| rng.gen_range(0..(1u64 << 17))).collect();
    let p = SortProblem {
        columns: vec![c1, c2],
        widths: vec![6, 17],
        descending: vec![false, true],
    };
    let reference = reference_sort(&p);
    let cols = code_vecs(&p);
    let refs: Vec<&CodeVec> = cols.iter().collect();
    let specs = sort_specs(&p);
    let plan = MassagePlan::column_at_a_time(&specs);

    let run = |threads: usize| {
        let cfg = ExecConfig {
            threads,
            want_final_groups: true,
            ..ExecConfig::default()
        };
        multi_column_sort(&refs, &specs, &plan, &cfg).expect("valid sort instance")
    };
    let serial = run(1);
    assert!(
        serial.stats.morsel_counts().is_empty(),
        "threads=1 must not schedule morsels"
    );
    mcs_test_support::assert_matches_reference(
        "skew/t1",
        &p,
        &reference,
        &serial.oids,
        Some(&serial.groups.offsets),
    );
    for threads in [2usize, 4, 8] {
        let mut stolen = 0u64;
        for attempt in 0..50 {
            let out = run(threads);
            assert_eq!(
                out.oids, serial.oids,
                "skew/t{threads}/attempt{attempt}: steal schedule leaked into the output"
            );
            assert_eq!(
                out.groups.offsets, serial.groups.offsets,
                "skew/t{threads}/attempt{attempt}: group bounds diverged"
            );
            let m = out.stats.morsel_counts();
            assert!(m.dispatched > 0, "skew/t{threads}: no morsels dispatched");
            stolen = m.stolen;
            if stolen > 0 {
                break;
            }
        }
        assert!(
            stolen > 0,
            "skew/t{threads}: no steal observed in 50 attempts on a >90% skewed group"
        );
    }
}

/// Degenerate shapes every engine change must keep working: zero rows,
/// one row, a single 1-bit column with heavy ties, and an all-equal
/// column collapsing to one group.
#[test]
fn degenerate_shapes_every_plan() {
    let mut rng = Rng::seed_from_u64(7);
    for (name, p) in degenerate_problems(&mut rng) {
        let reference = reference_sort(&p);
        for shape in SHAPES {
            let Some(round_widths) = shape_widths(shape, &p.widths) else {
                continue;
            };
            let plan = MassagePlan::from_widths(&round_widths);
            for threads in [1usize, 4] {
                run_and_check(
                    &format!("degenerate/{name}/{shape:?}/t{threads}"),
                    &p,
                    &reference,
                    &plan,
                    threads,
                );
            }
        }
    }
}
