//! Workspace-level integration tests: full pipelines across crates.

use codemassage::prelude::*;
use codemassage::workloads::{
    airline, ex1, ex2, ex3, ex4, run_bench_query, run_bench_query_naive, tpcds, tpch,
    AirlineParams, TpcdsParams, TpchParams,
};
use mcs_core::{multi_column_sort, verify_sorted};
use mcs_engine::reference::assert_same_rows;

/// Every benchmark query of every workload returns identical row
/// multisets with massaging on, off, and under the naive reference.
#[test]
fn all_workloads_all_queries_three_way_agreement() {
    let workloads = vec![
        tpch(&TpchParams {
            lineitem_rows: 2000,
            skew: None,
            seed: 21,
        }),
        tpch(&TpchParams {
            lineitem_rows: 2000,
            skew: Some(1.0),
            seed: 22,
        }),
        tpcds(&TpcdsParams {
            store_sales_rows: 2000,
            seed: 23,
        }),
        airline(&AirlineParams {
            ticket_rows: 2000,
            market_rows: 2000,
            seed: 24,
        }),
    ];
    let on = EngineConfig::default();
    let off = EngineConfig::without_massaging();
    for w in &workloads {
        for bq in &w.queries {
            let (r_on, _) = run_bench_query(w, bq, &on);
            let (r_off, _) = run_bench_query(w, bq, &off);
            let naive = run_bench_query_naive(w, bq);
            assert_same_rows(&r_on.columns, &naive);
            assert_same_rows(&r_off.columns, &naive);
        }
    }
}

/// The micro examples sort correctly under every named plan, and ROGA's
/// chosen plan is valid and never estimated worse than P0.
#[test]
fn micro_examples_and_planner() {
    let model = CostModel::with_defaults();
    for m in [ex1(800, 1), ex2(800, 2), ex3(400, 3), ex4(800, 4)] {
        let refs = m.column_refs();
        for (_, plan) in &m.plans {
            let out = multi_column_sort(&refs, &m.specs, plan, &ExecConfig::default())
                .expect("valid sort instance");
            verify_sorted(&refs, &m.specs, &out, true);
        }
        let inst = m.instance();
        let r = roga(&inst, &model, &RogaOptions::default()).expect("non-empty sort key");
        assert!(r.plan.validate(inst.total_width()).is_ok());
        assert!(r.est_cost <= model.t_mcs(&inst, &inst.p0()) + 1.0);
    }
}

/// A calibrated cost model drives the full engine end to end.
#[test]
fn calibrated_model_end_to_end() {
    let model = calibrate(MachineSpec::detect(), &CalibrationOptions::quick());
    let w = tpch(&TpchParams {
        lineitem_rows: 3000,
        skew: None,
        seed: 31,
    });
    let cfg = EngineConfig {
        planner: PlannerMode::Roga { rho: Some(0.001) },
        model,
        ..EngineConfig::default()
    };
    for bq in &w.queries {
        let (got, timings) = run_bench_query(&w, bq, &cfg);
        let want = run_bench_query_naive(&w, bq);
        assert_same_rows(&got.columns, &want);
        assert!(timings.total_ns > 0);
    }
}

/// Dictionary round trip through a query: encoded string grouping decodes
/// back to the right strings.
#[test]
fn dictionary_groupby_roundtrip() {
    let names = ["USA", "AUS", "USA", "CHN", "AUS", "USA"];
    let dict = Dictionary::build(names.iter().copied());
    let mut t = Table::new("t");
    t.add_column(Column::from_u64s(
        "nation",
        dict.width_bits(),
        names.iter().map(|s| dict.encode(s)),
    ));
    t.add_column(Column::from_u64s("x", 4, [1u64, 2, 3, 4, 5, 6]));

    let mut q = Query::named("g");
    q.group_by = vec!["nation".into()];
    q.aggregates = vec![Agg::new(AggKind::Count, "cnt")];
    let r = run_query(&t, &q, &EngineConfig::default()).unwrap();
    let decoded: Vec<&str> = r
        .column("nation")
        .unwrap()
        .iter()
        .map(|&c| dict.decode(c))
        .collect();
    assert_eq!(decoded, vec!["AUS", "CHN", "USA"]);
    assert_eq!(r.column("cnt").unwrap(), vec![2, 1, 3]);
}

/// WideTable denormalization feeds the engine: a two-hop star join
/// becomes a scan + group-by.
#[test]
fn widetable_star_join_query() {
    // region <- nation <- orders.
    let mut nation = Table::new("nation");
    nation.add_column(Column::from_u64s("n_region", 2, [0u64, 1, 1, 2]));
    let mut orders = Table::new("orders");
    orders.add_column(Column::from_u64s("o_nation", 2, [0u64, 1, 2, 3, 0, 3]));
    orders.add_column(Column::from_u64s("o_price", 8, [10u64, 20, 30, 40, 50, 60]));

    let wide = widen(
        "wide",
        &orders,
        &[DimensionJoin {
            fk_column: "o_nation",
            dimension: &nation,
            select: vec![("n_region", "region")],
        }],
    );
    let mut q = Query::named("by_region");
    q.group_by = vec!["region".into(), "o_nation".into()];
    q.aggregates = vec![Agg::new(AggKind::Sum("o_price".into()), "rev")];
    let r = run_query(&wide, &q, &EngineConfig::default()).unwrap();
    // Regions: nation0->r0 (10+50), nation1->r1 (20), nation2->r1 (30),
    // nation3->r2 (40+60).
    assert_eq!(r.column("rev").unwrap(), vec![60, 20, 30, 100]);
}

/// Multithreaded execution returns the same groups as single-threaded.
#[test]
fn threads_agree_end_to_end() {
    let w = tpcds(&TpcdsParams {
        store_sales_rows: 5000,
        seed: 44,
    });
    let bq = w.query("tpcds_q98");
    let mut cfg1 = EngineConfig::default();
    cfg1.exec.threads = 1;
    let mut cfg4 = EngineConfig::default();
    cfg4.exec.threads = 4;
    let (r1, _) = run_bench_query(&w, bq, &cfg1);
    let (r4, _) = run_bench_query(&w, bq, &cfg4);
    assert_same_rows(&r1.columns, &r4.columns);
}
