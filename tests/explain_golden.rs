//! Golden snapshot of the redacted EXPLAIN rendering: a fixed instance
//! under a fixed plan must produce byte-identical output across runs and
//! machines. Wall-clock cells are redacted; everything else — layout,
//! plan notation, widths, banks, group flow, invocation counts — is
//! deterministic and pinned here. Update the snapshot deliberately when
//! the report format changes.

use codemassage::columnar::CodeVec;
use codemassage::core::multi_column_sort;
use codemassage::prelude::*;

const GOLDEN: &str = "\
EXPLAIN mcs: golden
plan {R1: 24/[32], R2: 6/[16]}  rows 4096  predicted T_mcs ###  measured ###
phase                  width  bank  predicted   measured  pred/act
massage                    -     -        ###        ###       ###
R1 sort                   24  [32]        ###        ###       ###
R1 scan                   24  [32]        ###        ###       ###
   groups 1 -> 4096, 1 sort invocations, 4096 codes
R2 lookup                  6  [16]        ###        ###       ###
R2 sort                    6  [16]        ###        ###       ###
R2 scan                    6  [16]        ###        ###       ###
   groups 4096 -> 4096, 0 sort invocations, 0 codes
total                      -     -        ###        ###       ###
";

#[test]
fn redacted_explain_is_byte_stable() {
    let n = 4096usize;
    // Strided generators: deterministic, no RNG, full group-flow coverage
    // (R1 fans 1 group out to 4096; R2's groups are all singletons so its
    // segmented sort runs zero invocations).
    let a = CodeVec::from_u64s(9, (0..n).map(|i| (i as u64 * 37) % 512));
    let b = CodeVec::from_u64s(15, (0..n).map(|i| (i as u64 * 101) % 32768));
    let c = CodeVec::from_u64s(6, (0..n).map(|i| (i as u64 * 13) % 64));
    let inst = SortInstance::uniform(n, &[(9, 512.0), (15, 16384.0), (6, 64.0)]);
    let plan = MassagePlan::from_widths(&[24, 6]);
    let refs: Vec<&CodeVec> = vec![&a, &b, &c];
    let out = multi_column_sort(&refs, &inst.specs, &plan, &ExecConfig::default())
        .expect("plan covers the 30-bit key");

    let model = CostModel::with_defaults();
    let rep = ExplainReport::from_parts("golden", &inst, &plan, &out.stats, &model);

    let red = rep.render_redacted();
    assert_eq!(red, GOLDEN, "redacted EXPLAIN drifted from the snapshot");

    // Render twice: redaction must be deterministic within a run too.
    assert_eq!(rep.render_redacted(), red);

    // The full rendering shares the skeleton (same line count or more —
    // sub-phase lines appear only with real timings) and shows no
    // placeholders.
    let full = rep.render();
    assert!(!full.contains("###"));
    assert!(full.lines().count() >= red.lines().count());
}
