//! Memory-budget enforcement tests for the out-of-core sort.
//!
//! The budget contract has two sides:
//!
//! * **Bounded peak.** When `memory_budget_bytes` forces the external
//!   path, the sort's resident working memory — measured as the
//!   execution arena's `bytes_peak`, which holds every buffer the chunk
//!   sorts lease — stays within the budget times a small, documented
//!   slack constant, across row counts, key shapes, and budget sizes.
//! * **Zero overhead when unset.** With no budget (the default), the
//!   dispatch must not so much as allocate: a warm prepared query's
//!   round loop reports *exactly* zero heap allocations, same as before
//!   the budget knob existed. A budget that is set but large enough to
//!   hold the whole sort takes the identical in-memory path and keeps
//!   the same guarantee.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use mcs_columnar::CodeVec;
use mcs_core::{
    lease_footprint_bytes, multi_column_sort_with, ExecArena, ExecConfig, MassagePlan, SortSpec,
};
use mcs_engine::{Column, Database, EngineConfig, OrderKey, Query, Session, Table};
use mcs_extsort::external_multi_column_sort_with;
use mcs_test_support::{thread_allocation_count, CountingAlloc, Rng};

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

/// Allowed overshoot of the arena's byte peak relative to the budget.
///
/// The chunk-row count is derived from a per-row footprint estimated at
/// a fixed 4096-row probe, so three error terms separate the peak from
/// the budget itself: per-row ceiling rounding at the probe, the
/// footprint's constant terms (three group-offset buffers reserve
/// `n + 1` entries), and bank-granularity rounding of the final short
/// chunk. All are small and bounded; 1.5× plus one page of absolute
/// grace covers them with room while still failing loudly if chunking
/// ever stops respecting the budget.
const BUDGET_SLACK_NUM: usize = 3;
const BUDGET_SLACK_DEN: usize = 2;
const BUDGET_GRACE_BYTES: usize = 4096;

fn gen_cols(rng: &mut Rng, n: usize, widths: &[u32]) -> Vec<CodeVec> {
    widths
        .iter()
        .map(|&w| {
            let cap = 1u64 << w.min(16);
            CodeVec::from_u64s(w, (0..n).map(|_| rng.gen_range(0..cap)).collect::<Vec<_>>())
        })
        .collect()
}

/// Sweep shapes × budgets: the external sort must stay byte-identical to
/// the in-memory sort while its arena peak honours the budget.
#[test]
fn spilling_sort_keeps_arena_peak_within_budget() {
    let mut rng = Rng::seed_from_u64(0xB06E7);
    let shapes: [(usize, &[u32]); 3] = [(2_000, &[11, 13]), (5_000, &[7, 29, 40]), (3_000, &[64])];
    for (n, widths) in shapes {
        let cols = gen_cols(&mut rng, n, widths);
        let refs: Vec<&CodeVec> = cols.iter().collect();
        let specs: Vec<SortSpec> = widths
            .iter()
            .enumerate()
            .map(|(i, &w)| SortSpec {
                width: w,
                descending: i % 2 == 1,
            })
            .collect();
        let plan = MassagePlan::column_at_a_time(&specs);
        let cfg = ExecConfig {
            want_final_groups: true,
            ..ExecConfig::default()
        };
        let want = {
            let mut arena = ExecArena::new();
            multi_column_sort_with(&refs, &specs, &plan, &cfg, &mut arena).expect("in-memory")
        };

        let footprint = lease_footprint_bytes(&plan, n);
        for div in [4usize, 8, 16] {
            let budget = footprint / div;
            let mut arena = ExecArena::new();
            let (out, spill) =
                external_multi_column_sort_with(&refs, &specs, &plan, &cfg, &mut arena, budget)
                    .expect("external sort");
            assert!(
                spill.runs >= div as u64 / 2,
                "n={n} widths={widths:?} div={div}: only {} runs spilled",
                spill.runs
            );
            assert_eq!(out.oids, want.oids, "n={n} widths={widths:?} div={div}");
            assert_eq!(
                out.groups.offsets, want.groups.offsets,
                "n={n} widths={widths:?} div={div}"
            );

            let peak = arena.stats().bytes_peak as usize;
            let allowed = budget * BUDGET_SLACK_NUM / BUDGET_SLACK_DEN + BUDGET_GRACE_BYTES;
            assert!(
                peak <= allowed,
                "n={n} widths={widths:?} div={div}: arena peak {peak} bytes exceeds \
                 budget {budget} (allowed {allowed})"
            );
            // And the budget is doing real work: the bounded peak is far
            // below what the unbudgeted sort would have leased.
            assert!(
                peak < footprint,
                "n={n} widths={widths:?} div={div}: peak {peak} not below full footprint {footprint}"
            );
        }
    }
}

fn sales_db(rows: usize) -> Database {
    let mut t = Table::new("sales");
    t.add_column(Column::from_u64s(
        "nation",
        5,
        (0..rows).map(|i| (i as u64 * 7) % 32),
    ));
    t.add_column(Column::from_u64s(
        "ship_date",
        11,
        (0..rows).map(|i| (i as u64 * 131) % 2048),
    ));
    t.add_column(Column::from_u64s(
        "price",
        16,
        (0..rows).map(|i| (i as u64 * 997) % 65536),
    ));
    let mut db = Database::new();
    db.register(t);
    db
}

fn orderby_query() -> Query {
    let mut q = Query::named("by_keys");
    q.order_by = vec![OrderKey::asc("nation"), OrderKey::desc("ship_date")];
    q.select = vec!["price".into()];
    q
}

/// With the probe installed, a warm prepared query must report exactly
/// zero round-loop allocations — both with no budget at all and with a
/// budget generous enough that the dispatch stays in memory. The budget
/// knob must cost nothing when it doesn't bind.
#[test]
fn unbinding_budget_keeps_warm_round_loop_allocation_free() {
    let db = sales_db(4096);
    for budget in [None, Some(1usize << 30)] {
        let mut cfg = EngineConfig::builder().threads(1).build();
        cfg.exec.alloc_probe = Some(thread_allocation_count);
        cfg.exec.memory_budget_bytes = budget;
        let session = Session::new(&db, cfg);
        let prepared = session.prepare("sales", &orderby_query()).unwrap();

        let cold = prepared.execute(&session).unwrap();
        assert_eq!(
            cold.timings.spilled.runs, 0,
            "budget {budget:?} must not spill"
        );
        for run in 0..3 {
            let warm = prepared.execute(&session).unwrap();
            assert_eq!(
                warm.timings.mcs_stats.round_loop_allocs,
                Some(0),
                "budget {budget:?}, warm run {run} allocated in the round loop"
            );
            assert_eq!(warm.columns, cold.columns);
        }
    }
}

/// A binding budget on the engine path spills, stays correct against the
/// unbudgeted result, and reports the spill in the timings.
#[test]
fn binding_budget_on_the_engine_path_spills_and_reports() {
    let db = sales_db(8192);
    let q = orderby_query();
    let plain = EngineConfig::builder().threads(1).build();
    let t = db.table("sales").unwrap();
    let want = mcs_engine::run_query(t, &q, &plain).unwrap();
    assert_eq!(want.timings.spilled.runs, 0);

    let cfg = EngineConfig::builder()
        .threads(1)
        .memory_budget(32 * 1024)
        .build();
    let r = mcs_engine::run_query(t, &q, &cfg).unwrap();
    assert!(r.timings.spilled.runs >= 2, "{:?}", r.timings.spilled);
    assert!(r.timings.spilled.bytes > 0);
    assert!(r.timings.spilled.merge_comparisons > 0);
    assert!(r.timings.degradations.is_empty(), "spilling is not a rung");
    assert_eq!(r.columns, want.columns, "budgeted result differs");

    // The spill surfaces in EXPLAIN — and only when something spilled.
    let model = mcs_cost::CostModel::with_defaults();
    let rep = mcs_engine::ExplainReport::from_timings("budgeted", &r.timings, &model)
        .expect("sort ran")
        .render();
    assert!(rep.contains("spill:"), "no spill line in EXPLAIN:\n{rep}");
    assert!(
        rep.contains(&format!("{} runs", r.timings.spilled.runs)),
        "spill line missing run count:\n{rep}"
    );
    let clean = mcs_engine::ExplainReport::from_timings("plain", &want.timings, &model)
        .expect("sort ran")
        .render();
    assert!(
        !clean.contains("spill:"),
        "in-memory EXPLAIN grew a spill line:\n{clean}"
    );
}
