//! Robustness properties that must hold with faults *off*: the SQL
//! front-end never panics on arbitrary input, and plan validation rejects
//! every malformed [`MassagePlan`] shape before it can reach the
//! executor's unsafe-adjacent kernels.

use codemassage::core::{Bank, PlanError, Round};
use codemassage::prelude::*;
use mcs_engine::sql::parse_query;
use mcs_test_support::{check, Rng};

/// Random bytes (printable-biased so the tokenizer gets past the first
/// character often enough to exercise deep parser states).
fn random_input(rng: &mut Rng) -> String {
    let len = rng.gen_range(0..200usize);
    let bytes: Vec<u8> = (0..len)
        .map(|_| {
            if rng.gen_bool(0.85) {
                rng.gen_range(0x20..0x7fu32) as u8
            } else {
                rng.gen_range(0..=255u32) as u8
            }
        })
        .collect();
    String::from_utf8_lossy(&bytes).into_owned()
}

/// A valid query with random pieces chopped out, doubled, or spliced —
/// near-misses stress later parser states than pure noise does.
fn mutated_query(rng: &mut Rng) -> String {
    const SEEDS: &[&str] = &[
        "SELECT a, b, SUM(c) AS s FROM t WHERE a <= 10 AND b BETWEEN 2 AND 7 \
         GROUP BY a, b ORDER BY s DESC",
        "SELECT x, RANK() OVER (PARTITION BY x ORDER BY y DESC) FROM w WHERE z = 1",
        "SELECT a FROM t WHERE a <> 3 ORDER BY a ASC, b DESC",
        "SELECT p, COUNT(DISTINCT q) AS c FROM u GROUP BY p ORDER BY c",
    ];
    let mut s = SEEDS[rng.gen_range(0..SEEDS.len())].to_string();
    for _ in 0..rng.gen_range(1..4usize) {
        let tamper = rng.gen_range(0..4u32);
        // Splice on char boundaries only.
        let cut = |rng: &mut Rng, s: &str| -> usize {
            if s.is_empty() {
                return 0;
            }
            let mut i = rng.gen_range(0..=s.len());
            while !s.is_char_boundary(i) {
                i -= 1;
            }
            i
        };
        match tamper {
            0 => {
                // Delete a span.
                let a = cut(rng, &s);
                let b = cut(rng, &s);
                let (a, b) = (a.min(b), a.max(b));
                s.replace_range(a..b, "");
            }
            1 => {
                // Duplicate a span.
                let a = cut(rng, &s);
                let b = cut(rng, &s);
                let (a, b) = (a.min(b), a.max(b));
                let dup = s[a..b].to_string();
                s.insert_str(b, &dup);
            }
            2 => {
                // Insert noise (truncated on a char boundary).
                let at = cut(rng, &s);
                let mut noise = random_input(rng);
                let mut end = noise.len().min(20);
                while !noise.is_char_boundary(end) {
                    end -= 1;
                }
                noise.truncate(end);
                s.insert_str(at, &noise);
            }
            _ => {
                // Replace with garbage byte.
                let at = cut(rng, &s);
                s.insert(at, char::from(rng.gen_range(0x20..0x7fu32) as u8));
            }
        }
    }
    s
}

/// `parse_query` must return `Ok` or `Err` — never panic, never hang —
/// for any input whatsoever.
#[test]
fn parse_query_never_panics_on_arbitrary_input() {
    check("parse_query_never_panics_on_arbitrary_input", 512, |rng| {
        let input = if rng.gen_bool(0.5) {
            random_input(rng)
        } else {
            mutated_query(rng)
        };
        // The property is "returns", not "accepts": drop the result.
        let _ = parse_query(&input);
    });
}

/// Everything the SQL grammar corner-cases: empty input, lone keywords,
/// unterminated constructs, embedded NULs, very long identifiers.
#[test]
fn parse_query_survives_adversarial_corpus() {
    let corpus = [
        "",
        " ",
        "\0",
        "SELECT",
        "SELECT ",
        "SELECT FROM",
        "SELECT , FROM t ORDER BY a",
        "SELECT a FROM",
        "SELECT a FROM t WHERE",
        "SELECT a FROM t WHERE a",
        "SELECT a FROM t WHERE a <",
        "SELECT a FROM t WHERE a BETWEEN",
        "SELECT a FROM t WHERE a BETWEEN 1",
        "SELECT a FROM t WHERE a BETWEEN 1 AND",
        "SELECT a FROM t GROUP BY",
        "SELECT a FROM t ORDER BY",
        "SELECT SUM( FROM t GROUP BY a",
        "SELECT SUM(x FROM t GROUP BY a",
        "SELECT RANK() OVER FROM t",
        "SELECT RANK() OVER ( FROM t",
        "SELECT RANK() OVER (PARTITION BY ORDER BY) FROM t",
        "SELECT a FROM t ORDER BY a DESC DESC",
        "SELECT a FROM t WHERE a = 99999999999999999999999999999",
        "select a from t order by a", // lowercase keywords
        "SELECT \u{1F980} FROM t ORDER BY \u{1F980}",
    ];
    for sql in corpus {
        let _ = parse_query(sql);
    }
    let long_ident = format!("SELECT {0} FROM t ORDER BY {0}", "x".repeat(10_000));
    let _ = parse_query(&long_ident);
    let deep = format!(
        "SELECT a FROM t WHERE {} ORDER BY a",
        "a = 1 AND ".repeat(5_000)
    );
    let _ = parse_query(&deep);
}

/// Plan validation is the gate in front of the executor: zero-width
/// rounds, rounds wider than their bank, width mismatches, and empty
/// plans must all be rejected as typed errors — for every bank size.
#[test]
fn malformed_plans_are_rejected_by_validation() {
    // Empty plan: covers zero bits of an 8-bit key.
    let empty = MassagePlan::new(vec![]);
    assert!(matches!(
        empty.validate(8),
        Err(PlanError::WidthMismatch {
            got: 0,
            expected: 8
        })
    ));

    for bank in [Bank::B16, Bank::B32, Bank::B64] {
        let bits = bank.bits();
        // Zero-width round.
        let zero = MassagePlan::new(vec![Round { width: 0, bank }]);
        assert!(
            matches!(zero.validate(0), Err(PlanError::EmptyRound)),
            "bank {bits}"
        );
        // Round wider than its bank.
        let wide = MassagePlan::new(vec![Round {
            width: bits + 1,
            bank,
        }]);
        assert!(
            matches!(
                wide.validate(bits + 1),
                Err(PlanError::RoundOverflowsBank { .. })
            ),
            "bank {bits}"
        );
        // Total width mismatch against the key.
        let mismatch = MassagePlan::new(vec![Round { width: 4, bank }]);
        assert!(
            matches!(mismatch.validate(9), Err(PlanError::WidthMismatch { .. })),
            "bank {bits}"
        );
    }

    // And the executor refuses such plans as recoverable typed errors
    // rather than corrupting memory or panicking.
    let col = codemassage::columnar::CodeVec::from_u64s(5, [3u64, 1, 2, 0]);
    let specs = [SortSpec::asc(5)];
    let bad = MassagePlan::new(vec![Round {
        width: 9,
        bank: Bank::B16,
    }]);
    let err = multi_column_sort(&[&col], &specs, &bad, &ExecConfig::default());
    assert!(err.is_err(), "executor must reject invalid plans");
}

/// Random plan mutations: take a valid plan, break one invariant, and
/// confirm validation always catches it.
#[test]
fn mutated_plans_never_validate() {
    check("mutated_plans_never_validate", 128, |rng| {
        let total = rng.gen_range(2..=60u32);
        let p0 = MassagePlan::from_widths(&vec![1u32; total as usize]);
        assert!(p0.validate(total).is_ok());

        let mut rounds: Vec<Round> = p0.rounds.clone();
        match rng.gen_range(0..3u32) {
            0 => {
                // Zero a round's width.
                let i = rng.gen_range(0..rounds.len());
                rounds[i].width = 0;
            }
            1 => {
                // Inflate a round beyond 64 bits.
                let i = rng.gen_range(0..rounds.len());
                rounds[i].width = rng.gen_range(65..=128u32);
            }
            _ => {
                // Perturb total width away from the key's.
                let i = rng.gen_range(0..rounds.len());
                rounds[i].width += rng.gen_range(1..=8u32);
            }
        }
        let broken = MassagePlan::new(rounds);
        assert!(
            broken.validate(total).is_err(),
            "mutated plan validated: {broken}"
        );
    });
}

/// The typed-error pipeline end to end with faults *off*: every
/// recoverable misuse surfaces as `Err(EngineError)` with a stable
/// `Display`, and `source()` chains reach the root cause.
#[test]
fn engine_errors_chain_to_their_root_cause() {
    let mut t = Table::new("t");
    t.add_column(Column::from_u64s("a", 3, [1u64, 2, 3]));

    let mut q = Query::named("q");
    q.order_by = vec![OrderKey::asc("missing")];
    q.select = vec!["a".into()];
    let err = run_query(&t, &q, &EngineConfig::default()).unwrap_err();
    assert_eq!(err.to_string(), "unknown column \"missing\" in sort key");

    // SqlError converts into EngineError and keeps its source.
    let sql_err = parse_query("SELECT FROM").unwrap_err();
    let engine_err = EngineError::from(sql_err);
    assert!(engine_err.to_string().contains("SQL parse failed"));
    assert!(std::error::Error::source(&engine_err).is_some());
}
