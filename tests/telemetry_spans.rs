//! Acceptance test for the telemetry layer: every pipeline phase —
//! ByteSlice scan, per-round lookup, per-round sort (with its three
//! sub-phases), boundary scan, aggregation, window rank — emits exactly
//! one span per execution, with the expected names, and the JSONL export
//! carries them all.
//!
//! Runs a 3-column GROUP BY under a fixed `P_0` plan (3 rounds, known
//! counts) and a PARTITION BY query for the window span.
#![cfg(feature = "telemetry")]

use std::collections::BTreeMap;

use codemassage::prelude::*;
use codemassage::telemetry;

/// The global collector is shared; serialize against any future test in
/// this binary that also drains it.
static TELEMETRY_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

fn span_counts() -> BTreeMap<&'static str, usize> {
    let snap = telemetry::take_all();
    let mut counts: BTreeMap<&'static str, usize> = BTreeMap::new();
    for s in &snap.spans {
        *counts.entry(s.name).or_default() += 1;
    }
    assert_eq!(snap.spans_dropped, 0, "span buffer overflowed");
    counts
}

fn demo_table(n: usize) -> Table {
    let mut t = Table::new("sales");
    t.add_column(Column::from_u64s(
        "nation",
        10,
        (0..n).map(|i| (i as u64).wrapping_mul(0x9e37_79b9) % 50),
    ));
    t.add_column(Column::from_u64s(
        "ship_date",
        17,
        (0..n).map(|i| (i as u64).wrapping_mul(0x85eb_ca6b) % 5000),
    ));
    t.add_column(Column::from_u64s(
        "category",
        9,
        (0..n).map(|i| (i as u64).wrapping_mul(0xc2b2_ae35) % 300),
    ));
    t.add_column(Column::from_u64s(
        "price",
        17,
        (0..n).map(|i| i as u64 % 1000),
    ));
    t
}

#[test]
fn three_column_query_emits_one_span_per_phase() {
    let _guard = TELEMETRY_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    assert!(telemetry::is_enabled());

    let n = 4096;
    let t = demo_table(n);

    // 3-column GROUP BY with one filter, fixed P0 => exactly 3 rounds.
    let mut q = Query::named("spans_groupby");
    q.filters = vec![Filter {
        column: "price".into(),
        predicate: Predicate::Lt(900),
    }];
    q.group_by = vec!["nation".into(), "ship_date".into(), "category".into()];
    q.aggregates = vec![Agg::new(AggKind::Sum("price".into()), "sum_price")];
    let cfg = EngineConfig {
        planner: PlannerMode::Fixed(MassagePlan::from_widths(&[10, 17, 9])),
        ..EngineConfig::default()
    };

    telemetry::reset();
    let r = run_query(&t, &q, &cfg).unwrap();
    assert!(r.rows > 0);
    let counts = span_counts();

    // One span per phase execution: 1 filter scan; 1 massage; lookups for
    // rounds 2 and 3 only (round 1 sorts the gathered column directly);
    // 3 sorts, each with its three sub-phase spans; 3 boundary scans
    // (want_final_groups prices the last round's scan too); 1 aggregation;
    // 1 query envelope.
    let expect: &[(&str, usize)] = &[
        ("scan.byteslice", 1),
        ("mcs.massage", 1),
        ("mcs.round.lookup", 2),
        ("mcs.round.sort", 3),
        ("mcs.round.sort.in_register", 3),
        ("mcs.round.sort.in_cache_merge", 3),
        ("mcs.round.sort.multiway_merge", 3),
        ("mcs.round.scan", 3),
        ("engine.aggregate", 1),
        ("engine.query", 1),
    ];
    for &(name, want) in expect {
        assert_eq!(
            counts.get(name).copied().unwrap_or(0),
            want,
            "span count for {name} (all: {counts:?})"
        );
    }
    // Fixed plan => no planner search spans.
    assert_eq!(counts.get("planner.roga"), None, "all: {counts:?}");
}

#[test]
fn window_query_emits_rank_span_and_jsonl_roundtrip() {
    let _guard = TELEMETRY_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let t = demo_table(2048);

    let mut q = Query::named("spans_window");
    q.select = vec!["nation".into(), "price".into()];
    q.partition_by = vec!["nation".into()];
    q.window_order = vec![OrderKey::asc("ship_date")];
    let cfg = EngineConfig::default(); // ROGA: planner spans expected

    telemetry::reset();
    let r = run_query(&t, &q, &cfg).unwrap();
    assert!(r.rows > 0);

    let snap = telemetry::snapshot();
    let jsonl = telemetry::render_jsonl(&snap);
    let counts = span_counts();

    assert_eq!(counts.get("engine.window.rank").copied(), Some(1));
    assert_eq!(counts.get("engine.query").copied(), Some(1));
    assert_eq!(
        counts.get("planner.roga").copied(),
        Some(1),
        "all: {counts:?}"
    );
    assert_eq!(counts.get("mcs.massage").copied(), Some(1));

    // Every span name must round-trip into the JSONL export, one line per
    // span, plus counter lines and the trailing meta line.
    for name in counts.keys() {
        assert!(
            jsonl.contains(&format!("\"name\":\"{name}\"")),
            "JSONL missing span {name}"
        );
    }
    assert!(jsonl.contains("\"type\":\"counter\""));
    assert!(jsonl.lines().last().unwrap().contains("\"type\":\"meta\""));
    assert!(jsonl.contains("\"enabled\":true"));
}

/// A degraded execution (here: an invalid fixed plan, no fault injection
/// needed) bumps the `engine.degraded` counter with a reason-labelled
/// marker span, records the rung in the timings, and annotates EXPLAIN.
#[test]
fn degraded_execution_fires_counter_span_and_explain_annotation() {
    let _guard = TELEMETRY_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let t = demo_table(2048);

    let mut q = Query::named("spans_degraded");
    q.group_by = vec!["nation".into()];
    q.aggregates = vec![Agg::new(AggKind::Count, "cnt")];
    let cfg = EngineConfig {
        // The nation key is 10 bits; a 60-bit plan fails validation.
        planner: PlannerMode::Fixed(MassagePlan::from_widths(&[60])),
        ..EngineConfig::default()
    };

    telemetry::reset();
    let r = run_query(&t, &q, &cfg).unwrap();
    assert!(r.rows > 0);
    assert_eq!(r.timings.degradations, vec![DegradeReason::InvalidPlan]);

    let snap = telemetry::take_all();
    let degraded = snap
        .counters
        .iter()
        .find(|(n, _)| *n == "engine.degraded")
        .map(|&(_, v)| v);
    assert_eq!(degraded, Some(1), "counters: {:?}", snap.counters);
    let marker = snap
        .spans
        .iter()
        .find(|s| s.name == "engine.degraded")
        .expect("degradation marker span");
    assert!(
        marker
            .attrs
            .iter()
            .any(|(k, v)| *k == "reason" && format!("{v:?}").contains("invalid_plan")),
        "attrs: {:?}",
        marker.attrs
    );

    let rep =
        ExplainReport::from_timings("spans_degraded", &r.timings, &CostModel::with_defaults())
            .expect("a multi-column sort ran");
    assert!(rep.render().contains("degraded: invalid_plan"));
    // The redacted (golden) rendering carries the same annotation.
    assert!(rep.render_redacted().contains("degraded: invalid_plan"));
}

/// The session layer's plan-cache counters and concurrency span: cold
/// executions count `planner.cache.miss`, warm ones `planner.cache.hit`
/// (with no planner search span), and `run_concurrent` wraps the batch
/// in one `session.run_concurrent` span.
#[test]
fn session_plan_cache_counters_and_span() {
    let _guard = TELEMETRY_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let t = demo_table(2048);
    let mut db = Database::new();
    db.register(t);
    let session = Session::new(&db, EngineConfig::default());

    let mut q = Query::named("spans_session");
    q.order_by = vec![OrderKey::asc("nation"), OrderKey::asc("ship_date")];
    q.select = vec!["price".into()];

    telemetry::reset();
    let prepared = session.prepare("sales", &q).unwrap();
    let results = session.run_concurrent(&[prepared.clone(), prepared], 2, QueryOptions::default());
    assert!(results.iter().all(|r| r.is_ok()));

    let snap = telemetry::take_all();
    let counter = |name: &str| {
        snap.counters
            .iter()
            .find(|(n, _)| *n == name)
            .map(|&(_, v)| v)
    };
    // prepare missed once and searched; both concurrent executes hit.
    assert_eq!(counter("planner.cache.miss"), Some(1));
    assert_eq!(counter("planner.cache.hit"), Some(2));
    let roga_spans = snap
        .spans
        .iter()
        .filter(|s| s.name == "planner.roga")
        .count();
    assert_eq!(roga_spans, 1, "only the prepare searched");
    assert_eq!(
        snap.spans
            .iter()
            .filter(|s| s.name == "session.run_concurrent")
            .count(),
        1
    );
}

/// The execution arena's reuse counters: a cold session execution grows
/// the arena (`exec.arena.grow` + a `exec.arena.bytes_peak` delta), a
/// warm rerun only reuses (`exec.arena.reuse`), the stateless path emits
/// no arena counters at all, and EXPLAIN carries the matching `arena:`
/// line (byte-peak redacted like a timing).
#[test]
fn arena_counters_fire_on_session_executions_only() {
    let _guard = TELEMETRY_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let t = demo_table(2048);
    let mut db = Database::new();
    db.register(t.clone());
    let session = Session::new(&db, EngineConfig::default());

    let mut q = Query::named("spans_arena");
    q.order_by = vec![OrderKey::asc("nation"), OrderKey::asc("ship_date")];
    q.select = vec!["price".into()];
    let prepared = session.prepare("sales", &q).unwrap();

    let counter = |snap: &telemetry::TelemetrySnapshot, name: &str| {
        snap.counters
            .iter()
            .find(|(n, _)| *n == name)
            .map(|&(_, v)| v)
    };

    // Cold: first execution grows the arena from empty.
    telemetry::reset();
    prepared.execute(&session).unwrap();
    let cold = telemetry::take_all();
    assert_eq!(counter(&cold, "exec.arena.grow"), Some(1));
    assert!(counter(&cold, "exec.arena.bytes_peak").unwrap_or(0) > 0);
    assert_eq!(
        counter(&cold, "exec.arena.reuse"),
        None,
        "zero deltas are not emitted (counters: {:?})",
        cold.counters
    );

    // Warm: the rerun serves entirely from existing capacity.
    telemetry::reset();
    let warm = prepared.execute(&session).unwrap();
    let snap = telemetry::take_all();
    assert_eq!(counter(&snap, "exec.arena.reuse"), Some(1));
    assert_eq!(counter(&snap, "exec.arena.grow"), None);
    assert_eq!(counter(&snap, "exec.arena.bytes_peak"), None);

    // The EXPLAIN line mirrors the cumulative ExecStats snapshot.
    let rep =
        ExplainReport::from_timings("spans_arena", &warm.timings, &CostModel::with_defaults())
            .expect("a multi-column sort ran");
    assert!(rep.render().contains("bytes, grows 1, reuses 1\n"));
    assert!(rep.render_redacted().contains("arena: peak ### bytes"));

    // Stateless executions build their own private arena and stay silent.
    telemetry::reset();
    let mut q2 = Query::named("spans_stateless");
    q2.order_by = vec![OrderKey::asc("nation")];
    q2.select = vec!["price".into()];
    let r = run_query(&t, &q2, &EngineConfig::default()).unwrap();
    let snap = telemetry::take_all();
    assert_eq!(counter(&snap, "exec.arena.grow"), None);
    assert_eq!(counter(&snap, "exec.arena.reuse"), None);
    assert!(r.timings.mcs_stats.arena.is_empty());
}

/// The fault-point registry is part of the observability contract: chaos
/// tooling and dashboards key off these exact names.
#[test]
fn fault_point_registry_is_pinned() {
    use codemassage::faults::points;
    assert_eq!(
        points::ALL,
        [
            "planner.search.fail",
            "planner.search.starve",
            "cost.eval.nan",
            "core.round.sort",
            "simd.worker.panic",
            "extsort.spill.write",
            "extsort.spill.read",
            "exec.delay.massage",
            "exec.delay.round",
            "exec.delay.merge",
            "exec.delay.spill",
        ]
    );
    assert_eq!(points::PLANNER_SEARCH, "planner.search.fail");
    assert_eq!(points::PLANNER_STARVE, "planner.search.starve");
    assert_eq!(points::COST_NAN, "cost.eval.nan");
    assert_eq!(points::CORE_ROUND_SORT, "core.round.sort");
    assert_eq!(points::SIMD_WORKER_PANIC, "simd.worker.panic");
    assert_eq!(points::EXEC_DELAY_MASSAGE, "exec.delay.massage");
    assert_eq!(points::EXEC_DELAY_ROUND, "exec.delay.round");
    assert_eq!(points::EXEC_DELAY_MERGE, "exec.delay.merge");
    assert_eq!(points::EXEC_DELAY_SPILL, "exec.delay.spill");
}

/// The cancellation/overload counters and marker spans introduced with
/// the deadline layer: `engine.deadline_exceeded` and `engine.cancelled`
/// fire once per failed query with a query-named marker span;
/// `engine.shed` fires once per gate rejection. Registered here so
/// dashboards can key off the exact names.
#[test]
fn cancellation_counters_and_marker_spans_fire() {
    let _guard = TELEMETRY_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let t = demo_table(2048);
    let mut db = Database::new();
    db.register(t);
    let session = Session::new(&db, EngineConfig::default());

    let mut q = Query::named("spans_deadline");
    q.order_by = vec![OrderKey::asc("nation")];
    q.select = vec!["price".into()];

    let counter = |snap: &telemetry::TelemetrySnapshot, name: &str| {
        snap.counters
            .iter()
            .find(|(n, _)| *n == name)
            .map(|&(_, v)| v)
    };

    // Pre-expired deadline: one engine.deadline_exceeded count + marker.
    telemetry::reset();
    let opts = QueryOptions::default().with_deadline(std::time::Instant::now());
    let err = session.query("sales", &q, opts).unwrap_err();
    assert_eq!(err, EngineError::DeadlineExceeded);
    let snap = telemetry::take_all();
    assert_eq!(counter(&snap, "engine.deadline_exceeded"), Some(1));
    assert_eq!(counter(&snap, "engine.cancelled"), None);
    let marker = snap
        .spans
        .iter()
        .find(|s| s.name == "engine.deadline_exceeded")
        .expect("deadline marker span");
    assert!(
        marker
            .attrs
            .iter()
            .any(|(k, v)| *k == "query" && format!("{v:?}").contains("spans_deadline")),
        "attrs: {:?}",
        marker.attrs
    );

    // Manually fired token: one engine.cancelled count + marker.
    telemetry::reset();
    let token = CancelToken::new();
    token.cancel();
    let opts = QueryOptions::default().with_cancel(token);
    let err = session.query("sales", &q, opts).unwrap_err();
    assert_eq!(err, EngineError::Cancelled);
    let snap = telemetry::take_all();
    assert_eq!(counter(&snap, "engine.cancelled"), Some(1));
    assert_eq!(counter(&snap, "engine.deadline_exceeded"), None);
    assert!(snap.spans.iter().any(|s| s.name == "engine.cancelled"));

    // Saturated gate with zero queue budget: every shed execution counts
    // under engine.shed with a query-named marker span.
    telemetry::reset();
    let prepared = session.prepare("sales", &q).unwrap();
    let batch = vec![prepared; 8];
    let opts = QueryOptions::default().with_queue_timeout(std::time::Duration::ZERO);
    let results = session.run_concurrent(&batch, 1, opts);
    let shed = results
        .iter()
        .filter(|r| matches!(r, Err(EngineError::Overloaded { .. })))
        .count() as u64;
    assert!(shed > 0, "zero queue budget under 8x saturation must shed");
    let snap = telemetry::take_all();
    assert_eq!(counter(&snap, "engine.shed"), Some(shed));
    assert!(snap.spans.iter().any(|s| s.name == "engine.shed"));
}
